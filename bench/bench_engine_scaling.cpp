//===- bench/bench_engine_scaling.cpp - Batch engine thread scaling -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Measures the batch engine's throughput as worker count grows: the whole
// compilable corpus is analyzed at --jobs 1, 2, 4, ... up to (at least) 8
// and the hardware concurrency, reporting wall time, speedup, and
// parallel efficiency. Every configuration's report is checked to be
// byte-identical to the single-worker report, so the table doubles as a
// determinism audit.
//
// With a cache directory argument, a cold/warm pair of runs at the top
// jobs count additionally measures the result cache: the warm sweep must
// analyze zero shards and emit the same bytes.
//
// Usage: bench_engine_scaling [samples-per-benchmark] [shard-size]
//                             [cache-dir]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "engine/Engine.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::engine;

int main(int Argc, char **Argv) {
  EngineConfig Cfg;
  Cfg.SamplesPerBenchmark = Argc > 1 ? std::atoi(Argv[1]) : 32;
  Cfg.ShardSize = Argc > 2 ? std::atoi(Argv[2]) : 4;

  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0)
    HW = 1;
  std::vector<unsigned> JobCounts;
  for (unsigned J = 1; J <= std::max(8u, HW); J *= 2)
    JobCounts.push_back(J);
  if (JobCounts.back() != HW && HW > 1)
    JobCounts.push_back(HW);
  std::sort(JobCounts.begin(), JobCounts.end());
  JobCounts.erase(std::unique(JobCounts.begin(), JobCounts.end()),
                  JobCounts.end());

  std::printf("batch engine scaling: corpus sweep, %d samples/benchmark, "
              "shard size %d, %u hardware threads\n\n",
              Cfg.SamplesPerBenchmark, Cfg.ShardSize, HW);
  std::printf("%6s %10s %10s %9s %11s  %s\n", "jobs", "wall(s)", "runs/s",
              "speedup", "efficiency", "deterministic");

  std::string Reference;
  double BaseSeconds = 0.0;
  for (unsigned J : JobCounts) {
    Cfg.Jobs = J;
    Engine Eng(Cfg); // fresh engine: cache warmup is part of every run
    BatchResult R = Eng.runCorpus();
    std::string Rendered = R.renderJson();
    if (Reference.empty()) {
      Reference = Rendered;
      BaseSeconds = R.Stats.WallSeconds;
    }
    bool Identical = Rendered == Reference;
    double Speedup = R.Stats.WallSeconds > 0.0
                         ? BaseSeconds / R.Stats.WallSeconds
                         : 0.0;
    std::printf("%6u %10.3f %10.0f %8.2fx %10.1f%%  %s\n", J,
                R.Stats.WallSeconds,
                R.Stats.Runs / std::max(R.Stats.WallSeconds, 1e-9),
                Speedup, 100.0 * Speedup / J,
                Identical ? "yes" : "NO -- BUG");
    if (!Identical)
      return 1;
  }

  if (Argc > 3) {
    // Result-cache section: a cold sweep populates the cache, the warm
    // sweep must satisfy every shard from it and reproduce the bytes.
    Cfg.Jobs = JobCounts.back();
    Cfg.CacheDir = Argv[3];
    std::printf("\nresult cache (%s), jobs %u:\n", Argv[3], Cfg.Jobs);
    Engine Eng(Cfg);
    BatchResult Cold = Eng.runCorpus();
    BatchResult Warm = Eng.runCorpus();
    bool Identical = Warm.renderJson() == Reference &&
                     Cold.renderJson() == Reference;
    double Speedup = Warm.Stats.WallSeconds > 0.0
                         ? Cold.Stats.WallSeconds / Warm.Stats.WallSeconds
                         : 0.0;
    std::printf("  cold %.3fs (%llu analyzed), warm %.3fs (%llu analyzed, "
                "%llu cached, %.1fx), deterministic: %s\n",
                Cold.Stats.WallSeconds,
                static_cast<unsigned long long>(Cold.Stats.AnalyzedShards),
                Warm.Stats.WallSeconds,
                static_cast<unsigned long long>(Warm.Stats.AnalyzedShards),
                static_cast<unsigned long long>(Warm.Stats.CachedShards),
                Speedup, Identical ? "yes" : "NO -- BUG");
    if (!Identical || Warm.Stats.AnalyzedShards != 0)
      return 1;
  }
  return 0;
}
