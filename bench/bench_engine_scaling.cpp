//===- bench/bench_engine_scaling.cpp - Batch engine thread scaling -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Measures the batch engine's throughput as worker count grows: the whole
// compilable corpus is analyzed at --jobs 1, 2, 4, ... up to (at least) 8
// and the hardware concurrency, reporting wall time, speedup, and
// parallel efficiency. Every configuration's report is checked to be
// byte-identical to the single-worker report, so the table doubles as a
// determinism audit.
//
// The run also probes the allocation-free shadow hot path: a steady-state
// single-benchmark analysis is timed against the uninstrumented
// interpreter (the Table 1 "Herbgrind overhead" shape) while the
// per-thread limb allocator's counters verify that shadowed operations
// perform zero heap allocations.
//
// Everything is recorded to a machine-readable JSON file (default
// BENCH_engine.json, or --json-out FILE) so the perf trajectory is
// tracked commit over commit. Each sweep-shaped section additionally
// appends a run-ledger entry (default BENCH_ledger/, or
// --ledger-dir DIR) so `herbgrind_batch ledger compare` can judge the
// trajectory without re-parsing bench JSON.
//
// With a cache directory argument, a cold/warm pair of runs at the top
// jobs count additionally measures the result cache: the warm sweep must
// analyze zero shards and emit the same bytes.
//
// Usage: bench_engine_scaling [--json-out FILE] [--ledger-dir DIR]
//                             [samples-per-benchmark] [shard-size]
//                             [cache-dir]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/OpProfile.h"
#include "engine/Engine.h"
#include "engine/RunLedger.h"
#include "improve/BatchImprove.h"
#include "native/Context.h"
#include "native/Kernel.h"
#include "support/Format.h"
#include "support/LimbAlloc.h"
#include "support/Metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::bench;
using namespace herbgrind::engine;

namespace {

/// Steady-state shadow hot path probe: analyze one transcendental-free
/// corpus benchmark repeatedly with one reused Herbgrind instance, and
/// count limb-cache heap allocations once the caches are warm.
struct HotPathProbe {
  double NativeSeconds = 0.0;
  double HerbgrindSeconds = 0.0;
  uint64_t ShadowOps = 0;
  uint64_t SteadyHeapAllocs = 0;
  uint64_t SteadyCacheHits = 0;
  bool Ok = false;
};

HotPathProbe runHotPathProbe() {
  HotPathProbe Probe;
  const int Samples = 64;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!isStraightLine(*C.Body) || !fpcore::isCompilable(C))
      continue;
    Program P = fpcore::compile(C);
    std::vector<std::vector<double>> Inputs = sampleInputs(C, Samples);

    // Warm the native baseline the same way the instrumented run is
    // warmed below, so the recorded overhead factor compares steady
    // state to steady state.
    for (const auto &In : Inputs)
      interpret(P, In);
    Probe.NativeSeconds += timeIt([&] {
      for (const auto &In : Inputs)
        interpret(P, In);
    });

    Herbgrind HG(P);
    // Warm-up pass: populates the limb cache, pool slabs, and constant
    // caches; its allocations are one-time setup, not per-op cost.
    for (const auto &In : Inputs)
      HG.runOnInput(In);
    uint64_t Ops0 = HG.stats().ShadowOpsExecuted;
    limballoc::resetCounters();
    Probe.HerbgrindSeconds += timeIt([&] {
      for (const auto &In : Inputs)
        HG.runOnInput(In);
    });
    Probe.SteadyHeapAllocs += limballoc::heapAllocs();
    Probe.SteadyCacheHits += limballoc::cacheHits();
    Probe.ShadowOps += HG.stats().ShadowOpsExecuted - Ops0;
  }
  Probe.Ok = Probe.ShadowOps > 0;
  return Probe;
}

/// Sample-batched hot-path probe: the tier-0 (predicate-only) analyzer
/// over the straight-line SoA-batchable corpus benchmarks, scalar
/// point-at-a-time vs. runOnBatch. This is where batching pays directly:
/// the SoA runner strides contiguous double rows with no ShadowState,
/// machine state, or pool traffic per point. The speedup is the perf
/// gate of the batched path (byte-identity is checked at engine level).
struct BatchedProbe {
  double ScalarSeconds = 0.0;
  double BatchedSeconds = 0.0;
  uint64_t Runs = 0;
  unsigned Lanes = 32;
  bool Ok = false;
};

BatchedProbe runBatchedProbe() {
  BatchedProbe Probe;
  const int Samples = 256;
  const int Reps = 4;
  AnalysisConfig PCfg;
  PCfg.PredicateOnly = true;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!isStraightLine(*C.Body) || !fpcore::isCompilable(C))
      continue;
    Program P = fpcore::compile(C);
    Herbgrind HG(P, PCfg);
    if (!HG.soaBatchable())
      continue;
    std::vector<std::vector<double>> Inputs = sampleInputs(C, Samples);
    // Warm both paths (interning, scratch growth), then time steady state.
    for (const auto &In : Inputs)
      HG.runOnInput(In);
    HG.runOnBatch(Inputs.data(), Probe.Lanes);
    Probe.ScalarSeconds += timeIt([&] {
      for (int Rep = 0; Rep < Reps; ++Rep)
        for (const auto &In : Inputs)
          HG.runOnInput(In);
    });
    Probe.BatchedSeconds += timeIt([&] {
      for (int Rep = 0; Rep < Reps; ++Rep)
        for (size_t I = 0; I < Inputs.size(); I += Probe.Lanes)
          HG.runOnBatch(&Inputs[I],
                        std::min<size_t>(Probe.Lanes, Inputs.size() - I));
    });
    Probe.Runs += static_cast<uint64_t>(Reps) * Inputs.size();
  }
  Probe.Ok = Probe.Runs > 0;
  return Probe;
}

/// Native-frontend overhead probe: the same quadratic-root kernel run
/// four ways -- raw doubles, native::Real under a Context, the
/// uninstrumented interpreter, and the instrumented interpreter -- so the
/// per-op cost of the operator-overloading frontend is tracked against
/// both the hardware floor and the IR path it bypasses.
struct NativeProbe {
  double RawSeconds = 0.0;
  double NativeSeconds = 0.0;
  double InterpSeconds = 0.0;
  double HerbgrindSeconds = 0.0;
  uint64_t ShadowOps = 0;
};

NativeProbe runNativeProbe() {
  using herbgrind::native::Real;
  const int Samples = 512;
  const int Reps = 4;

  // One input set for all four implementations.
  Rng R(0x5eed);
  std::vector<std::array<double, 3>> Inputs;
  Inputs.reserve(Samples);
  for (int I = 0; I < Samples; ++I)
    Inputs.push_back({R.betweenOrdinals(1.0, 10.0),
                      R.betweenOrdinals(100.0, 1e6),
                      R.betweenOrdinals(1.0, 10.0)});

  NativeProbe Probe;

  // Raw doubles: the hardware floor. The accumulated sink keeps the
  // optimizer honest.
  volatile double Sink = 0.0;
  for (const auto &In : Inputs) // warm
    Sink += (-In[1] + std::sqrt(In[1] * In[1] - 4.0 * In[0] * In[2])) /
            (2.0 * In[0]);
  Probe.RawSeconds = timeIt([&] {
    for (int Rep = 0; Rep < Reps; ++Rep)
      for (const auto &In : Inputs)
        Sink += (-In[1] + std::sqrt(In[1] * In[1] - 4.0 * In[0] * In[2])) /
                (2.0 * In[0]);
  });

  // native::Real under a steady-state context, running the *registered*
  // quadratic kernel so the bench times exactly the code the engine
  // sweeps (one definition, no drift).
  const herbgrind::native::Kernel *QK = nullptr;
  for (const herbgrind::native::Kernel &K : herbgrind::native::demoKernels())
    if (K.Name == "native quadratic root")
      QK = &K;
  if (!QK) {
    std::fprintf(stderr, "native probe: quadratic demo kernel missing\n");
    return Probe;
  }
  herbgrind::native::Context Ctx;
  auto NativeOnce = [&](const std::array<double, 3> &In) {
    Ctx.run(*QK, In.data(), In.size());
  };
  for (const auto &In : Inputs) // warm-up: pools, caches, site table
    NativeOnce(In);
  uint64_t Ops0 = Ctx.stats().ShadowOpsExecuted;
  Probe.NativeSeconds = timeIt([&] {
    for (int Rep = 0; Rep < Reps; ++Rep)
      for (const auto &In : Inputs)
        NativeOnce(In);
  });
  Probe.ShadowOps = Ctx.stats().ShadowOpsExecuted - Ops0;

  // The same math as hand-built IR, uninstrumented and instrumented.
  ProgramBuilder PB;
  auto A = PB.input(0);
  auto B = PB.input(1);
  auto Cc = PB.input(2);
  auto Disc = PB.op(Opcode::SubF64, PB.op(Opcode::MulF64, B, B),
                    PB.op(Opcode::MulF64,
                          PB.op(Opcode::MulF64, PB.constF64(4.0), A), Cc));
  auto Root = PB.op(
      Opcode::DivF64,
      PB.op(Opcode::AddF64, PB.op(Opcode::NegF64, B),
            PB.op(Opcode::SqrtF64, Disc)),
      PB.op(Opcode::MulF64, PB.constF64(2.0), A));
  PB.out(Root);
  PB.halt();
  Program P = PB.finish();

  std::vector<std::vector<double>> InputVecs;
  InputVecs.reserve(Inputs.size());
  for (const auto &In : Inputs)
    InputVecs.push_back({In[0], In[1], In[2]});

  for (const auto &In : InputVecs)
    interpret(P, In);
  Probe.InterpSeconds = timeIt([&] {
    for (int Rep = 0; Rep < Reps; ++Rep)
      for (const auto &In : InputVecs)
        interpret(P, In);
  });

  Herbgrind HG(P);
  for (const auto &In : InputVecs)
    HG.runOnInput(In);
  Probe.HerbgrindSeconds = timeIt([&] {
    for (int Rep = 0; Rep < Reps; ++Rep)
      for (const auto &In : InputVecs)
        HG.runOnInput(In);
  });
  return Probe;
}

} // namespace

int main(int Argc, char **Argv) {
  EngineConfig Cfg;
  std::string JsonOut = "BENCH_engine.json";
  std::string LedgerDir = "BENCH_ledger";
  std::vector<const char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json-out") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --json-out needs a file path\n");
        return 2;
      }
      JsonOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--ledger-dir") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --ledger-dir needs a directory\n");
        return 2;
      }
      LedgerDir = Argv[++I];
    } else {
      Positional.push_back(Argv[I]);
    }
  }
  // One ledger entry per sweep-shaped section, so the perf trajectory is
  // queryable by the same `ledger compare` machinery the engine uses.
  auto AppendLedger = [&LedgerDir](const EngineConfig &SecCfg,
                                   const EngineStats &Stats,
                                   const char *Label) {
    LedgerEntry E = makeLedgerEntry(SecCfg, Stats, Label);
    std::string Path, Err;
    if (!ledgerAppend(LedgerDir, E, WireEncoding::Json, Path, Err)) {
      std::fprintf(stderr, "FAIL: ledger append (%s): %s\n", Label,
                   Err.c_str());
      return false;
    }
    return true;
  };
  Cfg.SamplesPerBenchmark =
      Positional.size() > 0 ? std::atoi(Positional[0]) : 32;
  Cfg.ShardSize = Positional.size() > 1 ? std::atoi(Positional[1]) : 4;

  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0)
    HW = 1;
  std::vector<unsigned> JobCounts;
  for (unsigned J = 1; J <= std::max(8u, HW); J *= 2)
    JobCounts.push_back(J);
  if (JobCounts.back() != HW && HW > 1)
    JobCounts.push_back(HW);
  std::sort(JobCounts.begin(), JobCounts.end());
  JobCounts.erase(std::unique(JobCounts.begin(), JobCounts.end()),
                  JobCounts.end());

  std::printf("batch engine scaling: corpus sweep, %d samples/benchmark, "
              "shard size %d, %u hardware threads\n\n",
              Cfg.SamplesPerBenchmark, Cfg.ShardSize, HW);
  std::printf("%6s %10s %10s %9s %11s  %s\n", "jobs", "wall(s)", "runs/s",
              "speedup", "efficiency", "deterministic");

  std::string JobsJson;
  std::string Reference;
  double BaseSeconds = 0.0;
  BatchResult LastResult; // top-jobs sweep, reused by the improver probe
  for (unsigned J : JobCounts) {
    Cfg.Jobs = J;
    Engine Eng(Cfg); // fresh engine: cache warmup is part of every run
    BatchResult R = Eng.runCorpus();
    std::string Rendered = R.renderJson();
    if (Reference.empty()) {
      Reference = Rendered;
      BaseSeconds = R.Stats.WallSeconds;
    }
    bool Identical = Rendered == Reference;
    double Speedup = R.Stats.WallSeconds > 0.0
                         ? BaseSeconds / R.Stats.WallSeconds
                         : 0.0;
    // The gate on this loop is byte-identity alone. Speedup is recorded
    // but only *expected* while the added workers map onto real hardware
    // threads; oversubscribed rows (J > HW -- the whole table on a
    // single-core container) are annotated so downstream consumers never
    // read flat scaling there as a regression.
    std::printf("%6u %10.3f %10.0f %8.2fx %10.1f%%  %s%s\n", J,
                R.Stats.WallSeconds,
                R.Stats.Runs / std::max(R.Stats.WallSeconds, 1e-9),
                Speedup, 100.0 * Speedup / J,
                Identical ? "yes" : "NO -- BUG",
                J > HW ? "  (oversubscribed; no speedup expected)" : "");
    if (!Identical)
      return 1;
    if (!JobsJson.empty())
      JobsJson += ",";
    JobsJson += format(
        "{\"jobs\":%u,\"wall_s\":%s,\"runs\":%llu,\"runs_per_s\":%s,"
        "\"speedup\":%s,\"speedup_expected\":%s,\"deterministic\":true}",
        J, formatDoubleShortest(R.Stats.WallSeconds).c_str(),
        static_cast<unsigned long long>(R.Stats.Runs),
        formatDoubleShortest(R.Stats.Runs /
                             std::max(R.Stats.WallSeconds, 1e-9))
            .c_str(),
        formatDoubleShortest(Speedup).c_str(), J <= HW ? "true" : "false");
    LastResult = std::move(R);
  }
  // The corpus sweep's accumulated metrics: the realistic telemetry
  // document the merge-overhead probe folds below.
  metrics::Snapshot SweepSnap = metrics::snapshot();
  if (!AppendLedger(Cfg, LastResult.Stats, "scaling"))
    return 1;

  // Batch-improver throughput: run the corpus-wide repair pass over the
  // top-jobs sweep's merged root causes, so improver speed is tracked
  // commit over commit like shadow-op throughput.
  improve::BatchImproveConfig BCfg;
  BCfg.Jobs = JobCounts.back();
  improve::BatchImproveStats IStats = improve::batchImprove(LastResult, BCfg);
  double RecordsPerS =
      IStats.WallSeconds > 0.0 ? IStats.Candidates / IStats.WallSeconds : 0.0;
  std::printf("\nbatch improver (jobs %u): %llu root causes (%llu "
              "significant, %llu improved) in %.3fs (%.0f records/s)\n",
              BCfg.Jobs,
              static_cast<unsigned long long>(IStats.Candidates),
              static_cast<unsigned long long>(IStats.Significant),
              static_cast<unsigned long long>(IStats.Improved),
              IStats.WallSeconds, RecordsPerS);

  // The allocation-free hot path probe (bench_table1_overhead's Herbgrind
  // row, instrumented): zero steady-state heap allocations is the
  // structural claim; the overhead factor is the perf trajectory number.
  HotPathProbe Probe = runHotPathProbe();
  double Overhead = Probe.NativeSeconds > 0.0
                        ? Probe.HerbgrindSeconds / Probe.NativeSeconds
                        : 0.0;
  double AllocsPerOp =
      Probe.ShadowOps
          ? static_cast<double>(Probe.SteadyHeapAllocs) / Probe.ShadowOps
          : 0.0;
  std::printf("\nshadow hot path (steady state, straight-line corpus):\n"
              "  native %.3fs, herbgrind %.3fs (%.1fx overhead); "
              "%llu shadow ops, %llu heap allocs (%.6f/op), "
              "%llu limb-cache hits\n",
              Probe.NativeSeconds, Probe.HerbgrindSeconds, Overhead,
              static_cast<unsigned long long>(Probe.ShadowOps),
              static_cast<unsigned long long>(Probe.SteadyHeapAllocs),
              AllocsPerOp,
              static_cast<unsigned long long>(Probe.SteadyCacheHits));

  // Native-frontend overhead: the operator-overloading path against the
  // hardware floor and against the interpreter it bypasses.
  NativeProbe NP = runNativeProbe();
  auto Over = [](double S, double Base) { return Base > 0.0 ? S / Base : 0.0; };
  std::printf("\nnative frontend (quadratic kernel, steady state):\n"
              "  raw double %.3fs, native::Real %.3fs (%.1fx), "
              "interpreter %.3fs (%.1fx), instrumented interpreter %.3fs "
              "(%.1fx); %llu shadow ops (%.0f ns/op native)\n",
              NP.RawSeconds, NP.NativeSeconds,
              Over(NP.NativeSeconds, NP.RawSeconds), NP.InterpSeconds,
              Over(NP.InterpSeconds, NP.RawSeconds), NP.HerbgrindSeconds,
              Over(NP.HerbgrindSeconds, NP.RawSeconds),
              static_cast<unsigned long long>(NP.ShadowOps),
              NP.ShadowOps ? 1e9 * NP.NativeSeconds / NP.ShadowOps : 0.0);

  // Op-profiler probe: sweep the bundled quadratic native kernel with
  // sampling at period 1 and rank where the shadow time goes. At period 1
  // the ranked rows account for every measured nanosecond, so coverage
  // below 0.9 means attribution itself broke (the acceptance gate).
  metrics::resetAll();
  opprof::enable(1);
  EngineConfig PCfg;
  PCfg.Jobs = JobCounts.back();
  PCfg.SamplesPerBenchmark = Cfg.SamplesPerBenchmark;
  PCfg.ShardSize = Cfg.ShardSize;
  std::vector<herbgrind::native::Kernel> QuadOnly;
  for (const herbgrind::native::Kernel &K : herbgrind::native::demoKernels())
    if (K.Name == "native quadratic root")
      QuadOnly.push_back(K);
  BatchResult ProfResult = Engine(PCfg).run(QuadOnly);
  opprof::disable();
  std::vector<opprof::OpProfileRow> ProfRows;
  for (const BenchmarkResult &BR : ProfResult.Benchmarks)
    opprof::accumulateOpProfile(BR.Records.Ops, ProfRows);
  opprof::finalizeOpProfile(ProfRows);
  uint64_t ProfTotalNs =
      metrics::snapshot().counterValue("profile.shadow_ns");
  uint64_t ProfRowNs = 0;
  for (const opprof::OpProfileRow &R : ProfRows)
    ProfRowNs += R.Nanos;
  double ProfCoverage =
      ProfTotalNs ? static_cast<double>(ProfRowNs) / ProfTotalNs : 0.0;
  std::printf("\nop profiler (quadratic kernel sweep, jobs %u, sample "
              "period 1):\n%s",
              PCfg.Jobs,
              opprof::renderOpProfileTable(ProfRows, 10, ProfTotalNs)
                  .c_str());
  std::string ProfRowsJson;
  size_t ProfTop = std::min<size_t>(ProfRows.size(), 10);
  for (size_t I = 0; I < ProfTop; ++I) {
    const opprof::OpProfileRow &R = ProfRows[I];
    if (!ProfRowsJson.empty())
      ProfRowsJson += ",";
    ProfRowsJson += format(
        "{\"op\":\"%s\",\"loc\":\"%s\",\"executions\":%llu,"
        "\"samples\":%llu,\"ns\":%llu,\"est_ns\":%s,"
        "\"limb_allocs\":%llu,\"limb_hits\":%llu}",
        opInfo(R.Op).Name, jsonEscape(R.Loc.str()).c_str(),
        static_cast<unsigned long long>(R.Executions),
        static_cast<unsigned long long>(R.Samples),
        static_cast<unsigned long long>(R.Nanos),
        formatDoubleShortest(R.estNanos()).c_str(),
        static_cast<unsigned long long>(R.LimbAllocs),
        static_cast<unsigned long long>(R.LimbHits));
  }
  std::string ProfileJson = format(
      "{\"total_ns\":%llu,\"coverage\":%s,\"rows\":[%s]}",
      static_cast<unsigned long long>(ProfTotalNs),
      formatDoubleShortest(ProfCoverage).c_str(), ProfRowsJson.c_str());
  if (!AppendLedger(PCfg, ProfResult.Stats, "profile"))
    return 1;

  // Telemetry-merge overhead: fold a JSON and an HGB rendering of the
  // corpus sweep's telemetry document (metrics snapshot plus the ranked
  // profile rows) the way `telemetry-merge` does for distributed slices.
  // The claim is only that merging is cheap next to the sweep it
  // describes, so the gate is generous.
  TelemetryDoc MergeDoc;
  MergeDoc.Metrics = SweepSnap;
  MergeDoc.Profile = ProfRows;
  MergeDoc.ProfileTotalNanos = ProfTotalNs;
  const std::string MergeJson = renderTelemetryJson(MergeDoc);
  const std::string MergeBin = renderTelemetryBinary(MergeDoc);
  const int MergeReps = 50;
  bool MergeOk = true;
  double MergeS = timeIt([&] {
    for (int I = 0; I < MergeReps; ++I) {
      TelemetryDoc Merged;
      std::string E;
      if (!mergeTelemetry({MergeJson, MergeBin}, Merged, E) ||
          Merged.Metrics.counterValue("engine.runs") !=
              2 * SweepSnap.counterValue("engine.runs"))
        MergeOk = false;
    }
  });
  double MergePerS = MergeS / MergeReps;
  std::printf("\ntelemetry merge (corpus sweep doc, json + hgb): %zu + %zu "
              "bytes, %.3f ms/merge, correct: %s\n",
              MergeJson.size(), MergeBin.size(), 1e3 * MergePerS,
              MergeOk ? "yes" : "NO -- BUG");
  std::string TelemetryMergeJson = format(
      "{\"docs\":2,\"json_bytes\":%llu,\"hgb_bytes\":%llu,\"merge_s\":%s,"
      "\"merges_per_s\":%s,\"correct\":%s}",
      static_cast<unsigned long long>(MergeJson.size()),
      static_cast<unsigned long long>(MergeBin.size()),
      formatDoubleShortest(MergePerS).c_str(),
      formatDoubleShortest(MergePerS > 0.0 ? 1.0 / MergePerS : 0.0).c_str(),
      MergeOk ? "true" : "false");

  std::string CacheJson = "null";
  if (Positional.size() > 2) {
    // Result-cache section: a cold sweep populates the cache, the warm
    // sweep must satisfy every shard from it and reproduce the bytes.
    Cfg.Jobs = JobCounts.back();
    Cfg.CacheDir = Positional[2];
    std::printf("\nresult cache (%s), jobs %u:\n", Positional[2], Cfg.Jobs);
    Engine Eng(Cfg);
    BatchResult Cold = Eng.runCorpus();
    BatchResult Warm = Eng.runCorpus();
    bool Identical = Warm.renderJson() == Reference &&
                     Cold.renderJson() == Reference;
    double Speedup = Warm.Stats.WallSeconds > 0.0
                         ? Cold.Stats.WallSeconds / Warm.Stats.WallSeconds
                         : 0.0;
    std::printf("  cold %.3fs (%llu analyzed), warm %.3fs (%llu analyzed, "
                "%llu cached, %.1fx), deterministic: %s\n",
                Cold.Stats.WallSeconds,
                static_cast<unsigned long long>(Cold.Stats.AnalyzedShards),
                Warm.Stats.WallSeconds,
                static_cast<unsigned long long>(Warm.Stats.AnalyzedShards),
                static_cast<unsigned long long>(Warm.Stats.CachedShards),
                Speedup, Identical ? "yes" : "NO -- BUG");
    if (!Identical || Warm.Stats.AnalyzedShards != 0)
      return 1;
    if (!AppendLedger(Cfg, Cold.Stats, "cache-cold") ||
        !AppendLedger(Cfg, Warm.Stats, "cache-warm"))
      return 1;
    CacheJson = format(
        "{\"cold_s\":%s,\"warm_s\":%s,\"warm_cached_shards\":%llu,"
        "\"warm_speedup\":%s}",
        formatDoubleShortest(Cold.Stats.WallSeconds).c_str(),
        formatDoubleShortest(Warm.Stats.WallSeconds).c_str(),
        static_cast<unsigned long long>(Warm.Stats.CachedShards),
        formatDoubleShortest(Speedup).c_str());
  }

  // Tiered shadowing: the same mixed workload (corpus cores plus the
  // native demo kernels, quadratic included) under all three tiers. The
  // perf claim is wall-clock: confirm skips the full shadow for every
  // benchmark tier 0 clears, fast skips it for every run, and both only
  // pay off while the escalation fraction stays below 1.0 -- which is
  // the acceptance gate, alongside confirm's byte-identity.
  std::vector<fpcore::Core> TierCores = fpcore::compilableCorpus();
  std::vector<herbgrind::native::Kernel> TierKernels =
      herbgrind::native::demoKernels();
  EngineConfig TCfg;
  TCfg.Jobs = JobCounts.back();
  TCfg.SamplesPerBenchmark = Cfg.SamplesPerBenchmark;
  TCfg.ShardSize = Cfg.ShardSize;
  auto RunTier = [&](TierMode Tier) {
    TCfg.Tier = Tier;
    return Engine(TCfg).run(TierCores, TierKernels);
  };
  BatchResult TFull = RunTier(TierMode::Full);
  BatchResult TConfirm = RunTier(TierMode::Confirm);
  BatchResult TFast = RunTier(TierMode::Fast);
  bool TierIdentical = TConfirm.renderJson() == TFull.renderJson();
  double ConfirmFraction =
      TFull.Stats.Benchmarks
          ? static_cast<double>(TConfirm.Stats.ConfirmedBenchmarks) /
                TFull.Stats.Benchmarks
          : 1.0;
  double FastFraction =
      TFast.Stats.Runs ? static_cast<double>(TFast.Stats.EscalatedRuns) /
                             TFast.Stats.Runs
                       : 1.0;
  std::printf("\ntiered shadowing (mixed workload, jobs %u):\n"
              "  full %.3fs; confirm %.3fs (%llu/%llu benchmarks "
              "escalated, %.0f%%), identical: %s; fast %.3fs (%llu/%llu "
              "runs escalated, %.0f%%)\n",
              TCfg.Jobs, TFull.Stats.WallSeconds,
              TConfirm.Stats.WallSeconds,
              static_cast<unsigned long long>(
                  TConfirm.Stats.ConfirmedBenchmarks),
              static_cast<unsigned long long>(TFull.Stats.Benchmarks),
              100.0 * ConfirmFraction, TierIdentical ? "yes" : "NO -- BUG",
              TFast.Stats.WallSeconds,
              static_cast<unsigned long long>(TFast.Stats.EscalatedRuns),
              static_cast<unsigned long long>(TFast.Stats.Runs),
              100.0 * FastFraction);
  TCfg.Tier = TierMode::Full;
  if (!AppendLedger(TCfg, TFull.Stats, "tier-full"))
    return 1;
  TCfg.Tier = TierMode::Confirm;
  if (!AppendLedger(TCfg, TConfirm.Stats, "tier-confirm"))
    return 1;
  TCfg.Tier = TierMode::Fast;
  if (!AppendLedger(TCfg, TFast.Stats, "tier-fast"))
    return 1;
  std::string TieredJson = format(
      "{\"full_s\":%s,\"confirm_s\":%s,\"fast_s\":%s,\"benchmarks\":%llu,"
      "\"confirmed_benchmarks\":%llu,\"confirm_escalation_fraction\":%s,"
      "\"fast_runs\":%llu,\"fast_escalated_runs\":%llu,"
      "\"fast_escalation_fraction\":%s,\"confirm_identical\":%s}",
      formatDoubleShortest(TFull.Stats.WallSeconds).c_str(),
      formatDoubleShortest(TConfirm.Stats.WallSeconds).c_str(),
      formatDoubleShortest(TFast.Stats.WallSeconds).c_str(),
      static_cast<unsigned long long>(TFull.Stats.Benchmarks),
      static_cast<unsigned long long>(TConfirm.Stats.ConfirmedBenchmarks),
      formatDoubleShortest(ConfirmFraction).c_str(),
      static_cast<unsigned long long>(TFast.Stats.Runs),
      static_cast<unsigned long long>(TFast.Stats.EscalatedRuns),
      formatDoubleShortest(FastFraction).c_str(),
      TierIdentical ? "true" : "false");

  // Sample-batched evaluation: the SoA tier-0 hot path scalar vs.
  // batched, plus the engine-level contract check -- a --batch sweep of
  // the corpus must reproduce the scalar reference bytes.
  BatchedProbe BP = runBatchedProbe();
  double BatchSpeedup = BP.BatchedSeconds > 0.0
                            ? BP.ScalarSeconds / BP.BatchedSeconds
                            : 0.0;
  EngineConfig BatCfg;
  BatCfg.Jobs = JobCounts.back();
  BatCfg.SamplesPerBenchmark = Cfg.SamplesPerBenchmark;
  BatCfg.ShardSize = Cfg.ShardSize;
  BatCfg.BatchLanes = BP.Lanes;
  BatchResult BatResult = Engine(BatCfg).runCorpus();
  bool BatchIdentical = BatResult.renderJson() == Reference;
  if (!AppendLedger(BatCfg, BatResult.Stats, "batched"))
    return 1;
  std::printf("\nbatched evaluation (tier-0 SoA hot path, %u lanes):\n"
              "  scalar %.3fs, batched %.3fs (%.2fx, %llu runs); "
              "--batch %u corpus sweep identical to scalar: %s\n",
              BP.Lanes, BP.ScalarSeconds, BP.BatchedSeconds, BatchSpeedup,
              static_cast<unsigned long long>(BP.Runs), BatCfg.BatchLanes,
              BatchIdentical ? "yes" : "NO -- BUG");
  std::string BatchedJson = format(
      "{\"lanes\":%u,\"scalar_s\":%s,\"batched_s\":%s,\"speedup\":%s,"
      "\"runs\":%llu,\"byte_identical\":%s}",
      BP.Lanes, formatDoubleShortest(BP.ScalarSeconds).c_str(),
      formatDoubleShortest(BP.BatchedSeconds).c_str(),
      formatDoubleShortest(BatchSpeedup).c_str(),
      static_cast<unsigned long long>(BP.Runs),
      BatchIdentical ? "true" : "false");

  // Wire-format probe: both encodings of the corpus batch report
  // document (the top-jobs sweep), sized and timed. The claims: HGB is
  // at least 4x smaller than the JSON bytes on this document, and the
  // binary round trip re-renders both formats to the exact same bytes.
  const std::string WireJson = LastResult.renderWire(WireEncoding::Json);
  const std::string WireBin = LastResult.renderWire(WireEncoding::Binary);
  double SizeRatio = WireBin.empty()
                         ? 0.0
                         : static_cast<double>(WireJson.size()) /
                               static_cast<double>(WireBin.size());
  const int WireReps = 20;
  double EncJsonS = timeIt([&] {
    for (int I = 0; I < WireReps; ++I) {
      std::string S = LastResult.renderWire(WireEncoding::Json);
      if (S.size() != WireJson.size())
        std::abort();
    }
  });
  double EncBinS = timeIt([&] {
    for (int I = 0; I < WireReps; ++I) {
      std::string S = LastResult.renderWire(WireEncoding::Binary);
      if (S.size() != WireBin.size())
        std::abort();
    }
  });
  BatchReportDoc WireDoc;
  std::string WireErr;
  bool WireRoundTrip = parseBatchReport(WireBin, WireDoc, WireErr) &&
                       renderBatchReportJson(WireDoc) == WireJson &&
                       renderBatchReportBinary(WireDoc) == WireBin;
  double DecJsonS = timeIt([&] {
    for (int I = 0; I < WireReps; ++I) {
      BatchReportDoc D;
      std::string E;
      if (!parseBatchReport(WireJson, D, E))
        std::abort();
    }
  });
  double DecBinS = timeIt([&] {
    for (int I = 0; I < WireReps; ++I) {
      BatchReportDoc D;
      std::string E;
      if (!parseBatchReport(WireBin, D, E))
        std::abort();
    }
  });
  auto MBPerS = [&](size_t Bytes, double Seconds) {
    return Seconds > 0.0
               ? static_cast<double>(Bytes) * WireReps / Seconds / 1e6
               : 0.0;
  };
  std::printf("\nwire formats (corpus batch report document):\n"
              "  json %zu bytes, hgb %zu bytes (%.2fx smaller); encode "
              "json %.0f MB/s, hgb %.0f MB/s; decode json %.0f MB/s, hgb "
              "%.0f MB/s; round trip identical: %s\n",
              WireJson.size(), WireBin.size(), SizeRatio,
              MBPerS(WireJson.size(), EncJsonS),
              MBPerS(WireBin.size(), EncBinS),
              MBPerS(WireJson.size(), DecJsonS),
              MBPerS(WireBin.size(), DecBinS),
              WireRoundTrip ? "yes" : "NO -- BUG");
  std::string WireSectionJson = format(
      "{\"json_bytes\":%llu,\"hgb_bytes\":%llu,\"size_ratio\":%s,"
      "\"encode_json_mb_s\":%s,\"encode_hgb_mb_s\":%s,"
      "\"decode_json_mb_s\":%s,\"decode_hgb_mb_s\":%s,"
      "\"roundtrip_identical\":%s}",
      static_cast<unsigned long long>(WireJson.size()),
      static_cast<unsigned long long>(WireBin.size()),
      formatDoubleShortest(SizeRatio).c_str(),
      formatDoubleShortest(MBPerS(WireJson.size(), EncJsonS)).c_str(),
      formatDoubleShortest(MBPerS(WireBin.size(), EncBinS)).c_str(),
      formatDoubleShortest(MBPerS(WireJson.size(), DecJsonS)).c_str(),
      formatDoubleShortest(MBPerS(WireBin.size(), DecBinS)).c_str(),
      WireRoundTrip ? "true" : "false");

  std::string Json = format(
      "{\"schema\":\"herbgrind-bench-engine-v1\","
      "\"samples_per_benchmark\":%d,\"shard_size\":%d,"
      "\"hardware_threads\":%u,\"jobs\":[%s],"
      "\"hot_path\":{\"native_s\":%s,\"herbgrind_s\":%s,"
      "\"overhead_factor\":%s,\"shadow_ops\":%llu,"
      "\"steady_heap_allocs\":%llu,\"allocs_per_op\":%s,"
      "\"limb_cache_hits\":%llu},"
      "\"improve\":{\"jobs\":%u,\"wall_s\":%s,\"candidates\":%llu,"
      "\"significant\":%llu,\"improved\":%llu,\"records_per_s\":%s},"
      "\"native\":{\"raw_s\":%s,\"native_s\":%s,\"interp_s\":%s,"
      "\"herbgrind_s\":%s,\"shadow_ops\":%llu,\"native_overhead\":%s,"
      "\"interp_overhead\":%s,\"herbgrind_overhead\":%s},"
      "\"profile\":%s,"
      "\"telemetry_merge\":%s,"
      "\"tiered\":%s,"
      "\"batched\":%s,"
      "\"wire\":%s,"
      "\"cache\":%s}\n",
      Cfg.SamplesPerBenchmark, Cfg.ShardSize, HW, JobsJson.c_str(),
      formatDoubleShortest(Probe.NativeSeconds).c_str(),
      formatDoubleShortest(Probe.HerbgrindSeconds).c_str(),
      formatDoubleShortest(Overhead).c_str(),
      static_cast<unsigned long long>(Probe.ShadowOps),
      static_cast<unsigned long long>(Probe.SteadyHeapAllocs),
      formatDoubleShortest(AllocsPerOp).c_str(),
      static_cast<unsigned long long>(Probe.SteadyCacheHits),
      BCfg.Jobs, formatDoubleShortest(IStats.WallSeconds).c_str(),
      static_cast<unsigned long long>(IStats.Candidates),
      static_cast<unsigned long long>(IStats.Significant),
      static_cast<unsigned long long>(IStats.Improved),
      formatDoubleShortest(RecordsPerS).c_str(),
      formatDoubleShortest(NP.RawSeconds).c_str(),
      formatDoubleShortest(NP.NativeSeconds).c_str(),
      formatDoubleShortest(NP.InterpSeconds).c_str(),
      formatDoubleShortest(NP.HerbgrindSeconds).c_str(),
      static_cast<unsigned long long>(NP.ShadowOps),
      formatDoubleShortest(Over(NP.NativeSeconds, NP.RawSeconds)).c_str(),
      formatDoubleShortest(Over(NP.InterpSeconds, NP.RawSeconds)).c_str(),
      formatDoubleShortest(Over(NP.HerbgrindSeconds, NP.RawSeconds)).c_str(),
      ProfileJson.c_str(), TelemetryMergeJson.c_str(), TieredJson.c_str(),
      BatchedJson.c_str(), WireSectionJson.c_str(), CacheJson.c_str());
  std::ofstream Out(JsonOut, std::ios::binary | std::ios::trunc);
  if (Out) {
    Out << Json;
    std::printf("\nrecorded %s\n", JsonOut.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", JsonOut.c_str());
  }

  // The zero-allocation acceptance gate: a steady-state shadowed op must
  // not reach the heap at the default 256-bit precision. A probe that
  // measured nothing is itself a failure -- otherwise a corpus change
  // could silently turn the gate vacuous.
  if (!Probe.Ok) {
    std::fprintf(stderr, "FAIL: hot-path probe matched no straight-line "
                         "benchmarks; the zero-allocation gate measured "
                         "nothing\n");
    return 1;
  }
  if (Probe.SteadyHeapAllocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations in steady-state shadow "
                 "execution (expected 0)\n",
                 static_cast<unsigned long long>(Probe.SteadyHeapAllocs));
    return 1;
  }
  // The profiler acceptance gate: the ranked rows must account for at
  // least 90% of the measured shadow time (100% at sample period 1
  // unless attribution lost samples somewhere).
  if (ProfRows.empty() || ProfCoverage < 0.9) {
    std::fprintf(stderr,
                 "FAIL: op profiler covered %.1f%% of %llu ns measured "
                 "shadow time (expected >= 90%%)\n",
                 100.0 * ProfCoverage,
                 static_cast<unsigned long long>(ProfTotalNs));
    return 1;
  }
  // The telemetry-merge acceptance gate: folding two corpus-sweep docs
  // must be correct and cheap -- 100ms per merge is orders of magnitude
  // above the expected cost, so only a pathological regression trips it.
  if (!MergeOk || MergePerS > 0.1) {
    std::fprintf(stderr,
                 "FAIL: telemetry merge %s (%.1f ms/merge, limit 100 ms)\n",
                 MergeOk ? "too slow" : "produced wrong totals",
                 1e3 * MergePerS);
    return 1;
  }
  // The tiering acceptance gates: confirm must reproduce full's bytes,
  // and tier 0 must actually clear something on the mixed workload -- an
  // escalation fraction of 1.0 means the cheap tier buys nothing.
  if (!TierIdentical) {
    std::fprintf(stderr,
                 "FAIL: confirm-tier report differs from full tier\n");
    return 1;
  }
  if (ConfirmFraction >= 1.0 || FastFraction >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: tier-0 escalated everything (confirm %.2f, fast "
                 "%.2f); the predicate tier is vacuous\n",
                 ConfirmFraction, FastFraction);
    return 1;
  }
  // The batched-evaluation acceptance gates: batching must never change
  // report bytes, and the SoA hot path must actually amortize -- below
  // 1.5x the per-batch restructuring is not earning its complexity. An
  // empty probe fails too (a corpus change must not make the gate
  // vacuous).
  if (!BatchIdentical) {
    std::fprintf(stderr,
                 "FAIL: --batch %u corpus sweep differs from scalar\n",
                 BatCfg.BatchLanes);
    return 1;
  }
  if (!BP.Ok || BatchSpeedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: batched tier-0 hot path %.2fx over scalar "
                 "(expected >= 1.5x over %llu runs)\n",
                 BatchSpeedup, static_cast<unsigned long long>(BP.Runs));
    return 1;
  }
  // The wire-format acceptance gates: the binary round trip must be
  // lossless to the byte in both directions, and HGB must earn its
  // existence -- at least 4x smaller than the JSON bytes on the corpus
  // batch document (interning plus the LZSS body codec).
  if (!WireRoundTrip) {
    std::fprintf(stderr, "FAIL: HGB batch document round trip is not "
                         "byte-identical (%s)\n",
                 WireErr.empty() ? "re-render mismatch" : WireErr.c_str());
    return 1;
  }
  if (SizeRatio < 4.0) {
    std::fprintf(stderr,
                 "FAIL: HGB batch document only %.2fx smaller than JSON "
                 "(%zu vs %zu bytes; expected >= 4x)\n",
                 SizeRatio, WireBin.size(), WireJson.size());
    return 1;
  }
  return 0;
}
