//===- bench/bench_fig5b_ranges.cpp - Figure 5b -----------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Figure 5b: how many benchmarks yield an improvable root cause with the
// three input-characteristic configurations: ranges off, a single range
// per variable, and sign-split ranges. The paper finds the configurations
// roughly tied on the FPBench micro-benchmarks (and conjectures larger
// programs would differentiate them).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace herbgrind;
using namespace herbgrind::bench;
using namespace herbgrind::improve;

int main() {
  std::printf("Figure 5b: improvable benchmarks vs range characteristic\n");
  std::printf("%12s %22s %12s\n", "ranges", "causes judged bad",
              "improvable");
  for (RangeMode Mode :
       {RangeMode::Off, RangeMode::Single, RangeMode::SignSplit}) {
    int Significant = 0;
    int Improvable = 0;
    for (const fpcore::Core &C : fpcore::corpus()) {
      if (!isStraightLine(*C.Body))
        continue;
      AnalysisConfig Cfg;
      Cfg.Ranges = Mode;
      auto HG = analyzeCore(C, /*Samples=*/32, Cfg);
      std::vector<uint32_t> Causes = HG->reportedRootCauses();
      bool AnySig = false, AnyImp = false;
      size_t Limit = std::min<size_t>(Causes.size(), 2);
      for (size_t I = 0; I < Limit && !AnyImp; ++I) {
        const OpRecord &Rec = HG->opRecords().at(Causes[I]);
        fpcore::ExprPtr Frag = fromSymExpr(*Rec.Expr);
        uint32_t NumVars = Rec.Expr->numVars();
        std::vector<std::string> Params;
        for (uint32_t V = 0; V < NumVars; ++V)
          Params.push_back(SymExpr::varName(V));
        ImproveConfig ICfg;
        ICfg.SampleCount = 96;
        ImproveResult Judge = improveExpr(
            *Frag, Params,
            specsFromCharacteristics(Rec.TotalInputs, NumVars, Mode), ICfg);
        AnySig |= Judge.HadSignificantError;
        AnyImp |= Judge.HadSignificantError && Judge.Improved;
      }
      Significant += AnySig;
      Improvable += AnyImp;
    }
    const char *Name = Mode == RangeMode::Off        ? "off"
                       : Mode == RangeMode::Single   ? "single"
                                                     : "sign-split";
    std::printf("%12s %22d %12d\n", Name, Significant, Improvable);
  }
  return 0;
}
