//===- bench/bench_fig5cd_depth.cpp - Figures 5c and 5d ---------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Figures 5c/5d: the effect of the maximum tracked expression depth on
// runtime (5c) and on how many benchmarks yield an improvable root cause
// (5d). Depth 1 "effectively disables symbolic expression tracking, and
// only reports the operation where error is detected" -- faster, but none
// of the resulting expressions are improvable; deeper tracking costs time
// and plateaus in usefulness.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <memory>

using namespace herbgrind;
using namespace herbgrind::bench;
using namespace herbgrind::improve;

int main() {
  std::printf("Figures 5c/5d: expression depth vs runtime and "
              "improvability\n");
  std::printf("%7s %12s %14s %12s\n", "depth", "runtime (s)",
              "judged bad", "improvable");
  for (uint32_t Depth : {1u, 2u, 3u, 5u, 10u, 24u}) {
    int Significant = 0;
    int Improvable = 0;
    double Elapsed = 0.0; // Fig 5c times the analysis alone
    {
      // Loop-bearing benchmarks included: their long accumulation chains
      // are what deep traces cost time on (extracted fragments stay
      // loop-free, so the judge handles them regardless).
      for (const fpcore::Core &C : fpcore::corpus()) {
        AnalysisConfig Cfg;
        Cfg.MaxExprDepth = Depth;
        std::unique_ptr<Herbgrind> HG;
        Elapsed += timeIt([&] { HG = analyzeCore(C, /*Samples=*/32, Cfg); });
        std::vector<uint32_t> Causes = HG->reportedRootCauses();
        bool AnySig = false, AnyImp = false;
        size_t Limit = std::min<size_t>(Causes.size(), 2);
        for (size_t I = 0; I < Limit && !AnyImp; ++I) {
          const OpRecord &Rec = HG->opRecords().at(Causes[I]);
          fpcore::ExprPtr Frag = fromSymExpr(*Rec.Expr);
          uint32_t NumVars = Rec.Expr->numVars();
          std::vector<std::string> Params;
          for (uint32_t V = 0; V < NumVars; ++V)
            Params.push_back(SymExpr::varName(V));
          ImproveConfig ICfg;
          ICfg.SampleCount = 96;
          ImproveResult Judge = improveExpr(
              *Frag, Params,
              specsFromCharacteristics(Rec.TotalInputs, NumVars,
                                       HG->config().Ranges),
              ICfg);
          AnySig |= Judge.HadSignificantError;
          AnyImp |= Judge.HadSignificantError && Judge.Improved;
        }
        Significant += AnySig;
        Improvable += AnyImp;
      }
    }
    std::printf("%7u %12.2f %14d %12d\n", Depth, Elapsed, Significant,
                Improvable);
  }
  return 0;
}
