//===- bench/bench_sec81_improvability.cpp - Section 8.1 -------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Regenerates the Section 8.1 improvability experiment. The paper (86
// benchmarks): the oracle finds 30 with significant error (>5 bits);
// Herbgrind detects 29 of those (96%); the improver confirms significant
// error in 25 of the reported root causes (86%); end-to-end 25/30 (83%)
// of erroneous benchmarks get an improvable root cause.
//
// Pipeline per benchmark:
//  1. oracle: judge the benchmark body directly on its :pre ranges;
//  2. Herbgrind: compile, analyze on sampled inputs, take root causes;
//  3. judge: convert the top root causes to FPCore, sample them on their
//     recorded input characteristics, check error and improvability.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace herbgrind;
using namespace herbgrind::bench;
using namespace herbgrind::improve;

int main() {
  int Total = 0;
  int OracleSignificant = 0;
  int OracleImprovable = 0;
  int HGDetected = 0;
  int HGCauseSignificant = 0;
  int HGCauseImprovable = 0;

  ImproveConfig ICfg;
  ICfg.SampleCount = 128;

  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!isStraightLine(*C.Body))
      continue; // the oracle/judge handles pure expressions, like Herbie
    ++Total;

    // (1) Oracle: extract the expression straight from source.
    ImproveResult Oracle =
        improveExpr(*C.Body, C.Params, specsFromPre(C), ICfg);
    bool Significant = Oracle.HadSignificantError;
    OracleSignificant += Significant;
    OracleImprovable += Significant && Oracle.Improved;
    if (!Significant)
      continue;

    // (2) Herbgrind on the compiled binary.
    auto HG = analyzeCore(C, /*Samples=*/48);
    std::vector<uint32_t> Causes = HG->reportedRootCauses();
    if (Causes.empty())
      continue;
    ++HGDetected;

    // (3) Judge the top root causes with the improver.
    bool AnySignificant = false;
    bool AnyImprovable = false;
    size_t Limit = std::min<size_t>(Causes.size(), 3);
    for (size_t I = 0; I < Limit && !AnyImprovable; ++I) {
      const OpRecord &Rec = HG->opRecords().at(Causes[I]);
      if (!Rec.Expr)
        continue;
      fpcore::ExprPtr Frag = fromSymExpr(*Rec.Expr);
      uint32_t NumVars = Rec.Expr->numVars();
      std::vector<std::string> Params;
      for (uint32_t V = 0; V < NumVars; ++V)
        Params.push_back(SymExpr::varName(V));
      std::vector<SampleSpec> Specs = specsFromCharacteristics(
          Rec.TotalInputs, NumVars, HG->config().Ranges);
      ImproveResult Judge = improveExpr(*Frag, Params, Specs, ICfg);
      AnySignificant |= Judge.HadSignificantError;
      AnyImprovable |= Judge.HadSignificantError && Judge.Improved;
    }
    HGCauseSignificant += AnySignificant;
    HGCauseImprovable += AnyImprovable;
  }

  std::printf("Section 8.1 improvability (paper, 86 benchmarks: 30 / 30 / "
              "29 / 25 / 25)\n\n");
  std::printf("benchmarks (straight-line)                  %3d\n", Total);
  std::printf("oracle: significant error (>5 bits)         %3d\n",
              OracleSignificant);
  std::printf("oracle: improvable                          %3d\n",
              OracleImprovable);
  std::printf("Herbgrind: detected + root cause reported   %3d  (%.0f%%)\n",
              HGDetected,
              100.0 * HGDetected / std::max(1, OracleSignificant));
  std::printf("root cause judged significant by improver   %3d\n",
              HGCauseSignificant);
  std::printf("root cause improvable end-to-end            %3d  (%.0f%%)\n",
              HGCauseImprovable,
              100.0 * HGCauseImprovable / std::max(1, OracleSignificant));
  return 0;
}
