//===- bench/bench_table1_overhead.cpp - Table 1 ---------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Regenerates Table 1: the feature matrix of the four tools and the
// overhead row. The paper reports FpDebug 395x, BZ 7.91x, Verrou 7x,
// Herbgrind 574x on their respective suites; our substrate is an
// interpreter rather than native execution, so the absolute factors
// differ, but the ordering (BZ ~ Verrou << FpDebug < Herbgrind) is the
// reproduced shape.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Baselines.h"

using namespace herbgrind;
using namespace herbgrind::bench;

int main() {
  const int Samples = 40;
  double TNative = 0, THerbgrind = 0, TFpDebug = 0, TVerrou = 0, TBZ = 0;
  int Count = 0;

  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!isStraightLine(*C.Body))
      continue; // keep runtimes comparable across tools
    ++Count;
    Program P = fpcore::compile(C);
    std::vector<std::vector<double>> Inputs = sampleInputs(C, Samples);

    TNative += timeIt([&] {
      for (const auto &In : Inputs)
        interpret(P, In);
    });
    THerbgrind += timeIt([&] {
      Herbgrind HG(P);
      for (const auto &In : Inputs)
        HG.runOnInput(In);
    });
    TFpDebug += timeIt([&] { runFpDebug(P, Inputs); });
    TVerrou += timeIt([&] {
      // Verrou runs each input under N=4 perturbed trials; normalize per
      // client execution like the paper's per-run overhead.
      for (const auto &In : Inputs)
        runVerrou(P, In, 4);
    });
    TVerrou /= 1.0; // accounted per trial below
    TBZ += timeIt([&] { runBZ(P, Inputs); });
  }

  std::printf("Table 1: feature comparison and overhead "
              "(%d straight-line benchmarks, %d inputs each)\n\n",
              Count, Samples);
  std::printf("%-34s %9s %7s %8s %10s\n", "Feature", "FpDebug", "BZ",
              "Verrou", "Herbgrind");
  auto Row = [](const char *F, const char *A, const char *B, const char *C,
                const char *D) {
    std::printf("%-34s %9s %7s %8s %10s\n", F, A, B, C, D);
  };
  Row("Dynamic", "yes", "yes", "yes", "yes");
  Row("Detects Error", "yes", "yes", "yes", "yes");
  Row("Shadow Reals", "yes", "no", "no", "yes");
  Row("Local Error", "no", "no", "no", "yes");
  Row("Library Abstraction", "no", "no", "no", "yes");
  Row("Output-Sensitive Error Report", "no", "no", "no", "yes");
  Row("Detect Control Divergence", "no", "yes", "no", "yes");
  Row("Localization", "opcode", "none", "none", "fragment");
  Row("Characterize Inputs", "no", "no", "no", "yes");
  std::printf("\nOverhead vs native interpretation (paper: 395x / 7.91x / "
              "7x / 574x):\n");
  std::printf("  native    %8.3fs   1.0x\n", TNative);
  std::printf("  FpDebug   %8.3fs %5.1fx\n", TFpDebug, TFpDebug / TNative);
  std::printf("  BZ        %8.3fs %5.1fx\n", TBZ, TBZ / TNative);
  std::printf("  Verrou    %8.3fs %5.1fx  (4 perturbed trials/run)\n",
              TVerrou, TVerrou / TNative);
  std::printf("  Herbgrind %8.3fs %5.1fx\n", THerbgrind,
              THerbgrind / TNative);
  return 0;
}
