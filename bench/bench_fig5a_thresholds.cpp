//===- bench/bench_fig5a_thresholds.cpp - Figure 5a -------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Figure 5a: the number of computations flagged as candidate root causes
// against the local-error threshold Tl. Higher thresholds flag fewer
// operations (users raise Tl when there is too much to triage, lower it
// for critical code).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace herbgrind;
using namespace herbgrind::bench;

int main() {
  const double Thresholds[] = {0.5, 1, 2, 5, 10, 20, 30, 40};
  std::printf("Figure 5a: flagged computations vs local-error threshold\n");
  std::printf("%10s %18s %22s\n", "Tl (bits)", "flagged op sites",
              "flagged executions");
  for (double Tl : Thresholds) {
    uint64_t Sites = 0;
    uint64_t Events = 0;
    for (const fpcore::Core &C : fpcore::corpus()) {
      if (!isStraightLine(*C.Body))
        continue;
      AnalysisConfig Cfg;
      Cfg.LocalErrorThreshold = Tl;
      auto HG = analyzeCore(C, /*Samples=*/24, Cfg);
      for (const auto &[PC, Rec] : HG->opRecords()) {
        Sites += Rec.Flagged > 0;
        Events += Rec.Flagged;
      }
    }
    std::printf("%10.1f %18llu %22llu\n", Tl,
                static_cast<unsigned long long>(Sites),
                static_cast<unsigned long long>(Events));
  }
  return 0;
}
