//===- bench/bench_sec82_wrapping.cpp - Section 8.2 -------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The library-wrapping ablation (Section 8.2). With wrapping on, library
// calls are atomic: expressions stay small (paper: max 9 operations).
// With wrapping off, the analysis sees libm's internals: the largest
// expressions balloon (paper: 31 ops, 133 expressions over 9 ops, 848
// problematic expressions, mostly false positives inside the math
// library, including the leaked round-to-int constant 6.755399e15).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace herbgrind;
using namespace herbgrind::bench;

namespace {

struct WrapStats {
  unsigned MaxOps = 0;
  unsigned Over9 = 0;
  unsigned Problematic = 0;
  bool MagicLeaked = false;
};

WrapStats collect(bool Wrap) {
  WrapStats St;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!isStraightLine(*C.Body))
      continue;
    AnalysisConfig Cfg;
    Cfg.WrapLibraryCalls = Wrap;
    auto HG = analyzeCore(C, /*Samples=*/16, Cfg);
    for (const auto &[PC, Rec] : HG->opRecords()) {
      if (Rec.Flagged == 0 || !Rec.Expr)
        continue;
      ++St.Problematic;
      unsigned Ops = Rec.Expr->opCount();
      St.MaxOps = std::max(St.MaxOps, Ops);
      St.Over9 += Ops > 9;
      if (Rec.Expr->fpcoreBody().find("6755399441055744") !=
          std::string::npos)
        St.MagicLeaked = true;
    }
  }
  return St;
}

} // namespace

int main() {
  WrapStats On = collect(true);
  WrapStats Off = collect(false);
  std::printf("Section 8.2 library wrapping ablation "
              "(paper: max 9 -> 31 ops; 133 exprs > 9 ops; 848 "
              "problematic)\n\n");
  std::printf("%-36s %12s %12s\n", "", "wrapped", "unwrapped");
  std::printf("%-36s %12u %12u\n", "largest expression (ops)", On.MaxOps,
              Off.MaxOps);
  std::printf("%-36s %12u %12u\n", "expressions over 9 ops", On.Over9,
              Off.Over9);
  std::printf("%-36s %12u %12u\n", "problematic expressions",
              On.Problematic, Off.Problematic);
  std::printf("%-36s %12s %12s\n", "libm magic constant 6.7554e15 leaked",
              On.MagicLeaked ? "yes" : "no",
              Off.MagicLeaked ? "yes" : "no");
  return 0;
}
