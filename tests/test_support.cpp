//===- tests/test_support.cpp - Support library unit tests ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/FloatBits.h"
#include "support/Format.h"
#include "support/Pool.h"
#include "support/Rng.h"
#include "support/RunningStat.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// FloatBits
//===----------------------------------------------------------------------===//

TEST(FloatBits, BitCastRoundTrip) {
  for (double X : {0.0, -0.0, 1.0, -1.5, 1e300, 5e-324,
                   std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(bitsOfDouble(doubleFromBits(bitsOfDouble(X))), bitsOfDouble(X));
  }
}

TEST(FloatBits, OrdinalOrderingMatchesDoubleOrdering) {
  Rng R(42);
  for (int I = 0; I < 10000; ++I) {
    double A = R.anyFiniteDouble();
    double B = R.anyFiniteDouble();
    EXPECT_EQ(A < B, ordinalOfDouble(A) < ordinalOfDouble(B))
        << A << " vs " << B;
  }
}

TEST(FloatBits, OrdinalRoundTrip) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double X = R.anyFiniteDouble();
    if (X == 0.0)
      continue; // both zeros share ordinal 0; round-trip returns +0
    EXPECT_EQ(doubleFromOrdinal(ordinalOfDouble(X)), X);
  }
  EXPECT_EQ(doubleFromOrdinal(ordinalOfDouble(0.0)), 0.0);
  EXPECT_EQ(doubleFromOrdinal(ordinalOfDouble(-0.0)), 0.0);
}

TEST(FloatBits, AdjacentDoublesAreOneUlpApart) {
  for (double X : {1.0, -1.0, 0.0, 1e-300, 1e300, 123.456}) {
    EXPECT_EQ(ulpsBetweenDoubles(X, nextDouble(X)), 1u);
    EXPECT_EQ(ulpsBetweenDoubles(X, X), 0u);
  }
}

TEST(FloatBits, ZerosAreEqualInUlps) {
  EXPECT_EQ(ulpsBetweenDoubles(0.0, -0.0), 0u);
}

TEST(FloatBits, BitsOfErrorBasics) {
  EXPECT_DOUBLE_EQ(bitsOfErrorDouble(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bitsOfErrorDouble(1.0, nextDouble(1.0)), 1.0);
  double NaN = std::nan("");
  EXPECT_DOUBLE_EQ(bitsOfErrorDouble(NaN, NaN), 0.0);
  EXPECT_DOUBLE_EQ(bitsOfErrorDouble(NaN, 1.0), 64.0);
  EXPECT_DOUBLE_EQ(bitsOfErrorDouble(1.0, NaN), 64.0);
}

TEST(FloatBits, BitsOfErrorGrowsWithDistance) {
  double E1 = bitsOfErrorDouble(1.0, 1.0 + 1e-15);
  double E2 = bitsOfErrorDouble(1.0, 1.0 + 1e-10);
  double E3 = bitsOfErrorDouble(1.0, 2.0);
  EXPECT_LT(E1, E2);
  EXPECT_LT(E2, E3);
  // 1.0 vs 2.0 differ by 2^52 ulps => 52 bits of error.
  EXPECT_NEAR(E3, 52.0, 0.01);
}

TEST(FloatBits, FloatVariants) {
  EXPECT_EQ(ulpsBetweenFloats(1.0f, std::nextafterf(1.0f, 2.0f)), 1u);
  EXPECT_DOUBLE_EQ(bitsOfErrorFloat(std::nanf(""), 1.0f), 32.0);
  EXPECT_NEAR(bitsOfErrorFloat(1.0f, 2.0f), 23.0, 0.01);
}

TEST(FloatBits, NextPrevInverse) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double X = R.anyFiniteDouble();
    EXPECT_EQ(prevDouble(nextDouble(X)), X == 0.0 ? 0.0 : X);
  }
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng R(5);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, UniformRealInRange) {
  Rng R(6);
  for (int I = 0; I < 10000; ++I) {
    double X = R.uniformReal(-3.0, 5.0);
    EXPECT_GE(X, -3.0);
    EXPECT_LT(X, 5.0);
  }
}

TEST(Rng, BetweenOrdinalsInRange) {
  Rng R(8);
  for (int I = 0; I < 10000; ++I) {
    double X = R.betweenOrdinals(-1e10, 1e10);
    EXPECT_GE(X, -1e10);
    EXPECT_LE(X, 1e10);
  }
}

TEST(Rng, BetweenOrdinalsCoversMagnitudes) {
  // Ordinal sampling should produce values across many orders of magnitude,
  // unlike uniformReal which clusters at the large end.
  Rng R(11);
  std::set<int> ExponentsSeen;
  for (int I = 0; I < 2000; ++I) {
    double X = R.betweenOrdinals(1e-100, 1e100);
    int Exp;
    std::frexp(X, &Exp);
    ExponentsSeen.insert(Exp / 50);
  }
  EXPECT_GT(ExponentsSeen.size(), 8u);
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(Format, Basic) {
  EXPECT_EQ(format("x=%d y=%s", 4, "hi"), "x=4 y=hi");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Format, DoubleShortestRoundTrips) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I) {
    double X = R.anyFiniteDouble();
    std::string S = formatDoubleShortest(X);
    EXPECT_EQ(std::stod(S), X) << S;
  }
}

TEST(Format, DoubleShortestPicksShortForms) {
  EXPECT_EQ(formatDoubleShortest(0.1), "0.1");
  EXPECT_EQ(formatDoubleShortest(1.0), "1");
  EXPECT_EQ(formatDoubleShortest(-2.5), "-2.5");
}

TEST(Format, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

//===----------------------------------------------------------------------===//
// Pool
//===----------------------------------------------------------------------===//

namespace {
struct Tracked {
  explicit Tracked(int V) : Value(V) { ++Live; }
  ~Tracked() { --Live; }
  int Value;
  static int Live;
};
int Tracked::Live = 0;
} // namespace

TEST(Pool, CreateDestroy) {
  Pool<Tracked> P;
  Tracked *A = P.create(1);
  Tracked *B = P.create(2);
  EXPECT_EQ(A->Value, 1);
  EXPECT_EQ(B->Value, 2);
  EXPECT_EQ(P.live(), 2u);
  P.destroy(A);
  P.destroy(B);
  EXPECT_EQ(P.live(), 0u);
  EXPECT_EQ(Tracked::Live, 0);
}

TEST(Pool, ReusesSlots) {
  Pool<Tracked> P;
  Tracked *A = P.create(1);
  P.destroy(A);
  Tracked *B = P.create(2);
  EXPECT_EQ(static_cast<void *>(A), static_cast<void *>(B));
  P.destroy(B);
}

TEST(Pool, ManyObjects) {
  Pool<Tracked> P;
  std::vector<Tracked *> Objs;
  for (int I = 0; I < 10000; ++I)
    Objs.push_back(P.create(I));
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Objs[static_cast<size_t>(I)]->Value, I);
  EXPECT_EQ(P.totalAllocated(), 10000u);
  for (Tracked *T : Objs)
    P.destroy(T);
  EXPECT_EQ(Tracked::Live, 0);
}

TEST(Pool, DisabledFallsBackToHeap) {
  Pool<Tracked> P(/*Enabled=*/false);
  Tracked *A = P.create(7);
  EXPECT_EQ(A->Value, 7);
  P.destroy(A);
  EXPECT_FALSE(P.enabled());
}

TEST(Pool, ResetRewindsSlabs) {
  Pool<Tracked> P;
  std::vector<Tracked *> Objs;
  for (int I = 0; I < 200; ++I)
    Objs.push_back(P.create(I));
  void *FirstSlot = Objs.front();
  for (Tracked *T : Objs)
    P.destroy(T);
  P.reset();
  // After reset the pool hands out the already-grown slabs front to back,
  // starting from the very first slot.
  Tracked *A = P.create(42);
  EXPECT_EQ(static_cast<void *>(A), FirstSlot);
  EXPECT_EQ(A->Value, 42);
  // Allocation keeps working past the first slab boundary after a rewind.
  std::vector<Tracked *> Round2{A};
  for (int I = 0; I < 300; ++I)
    Round2.push_back(P.create(I));
  for (Tracked *T : Round2)
    P.destroy(T);
  EXPECT_EQ(P.live(), 0u);
  EXPECT_EQ(Tracked::Live, 0);
}

TEST(Pool, ResetSafeWhenDisabled) {
  Pool<Tracked> P(/*Enabled=*/false);
  Tracked *A = P.create(3);
  P.destroy(A);
  P.reset(); // nothing pooled to recycle; must be a safe no-op
  Tracked *B = P.create(4);
  EXPECT_EQ(B->Value, 4);
  P.destroy(B);
  EXPECT_EQ(Tracked::Live, 0);
}

//===----------------------------------------------------------------------===//
// RunningStat
//===----------------------------------------------------------------------===//

TEST(RunningStat, Empty) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(RunningStat, Aggregates) {
  RunningStat S;
  S.add(1.0);
  S.add(3.0);
  S.add(2.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat A, B, All;
  for (int I = 0; I < 10; ++I) {
    A.add(I);
    All.add(I);
  }
  for (int I = 10; I < 25; ++I) {
    B.add(I);
    All.add(I);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_DOUBLE_EQ(A.mean(), All.mean());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

//===----------------------------------------------------------------------===//
// SourceLoc
//===----------------------------------------------------------------------===//

TEST(SourceLoc, Rendering) {
  SourceLoc L("main.cpp", 24, "run(int, int)");
  EXPECT_EQ(L.str(), "main.cpp:24 in run(int, int)");
  EXPECT_TRUE(L.isKnown());
  SourceLoc Unknown;
  EXPECT_EQ(Unknown.str(), "<unknown>");
  EXPECT_FALSE(Unknown.isKnown());
}
