//===- tests/test_trace.cpp - Trace and anti-unification tests ------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "trace/SymExpr.h"
#include "trace/TraceNode.h"

#include <gtest/gtest.h>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// TraceArena basics
//===----------------------------------------------------------------------===//

TEST(TraceArena, LeafAndNodeLifecycle) {
  TraceArena A;
  TraceNode *L1 = A.leaf(1.0);
  TraceNode *L2 = A.leaf(2.0);
  TraceNode *Kids[2] = {L1, L2};
  TraceNode *N = A.node(Opcode::AddF64, 3, 3.0, Kids, 2);
  EXPECT_EQ(N->Depth, 2u);
  EXPECT_EQ(N->Value, 3.0);
  EXPECT_EQ(A.liveNodes(), 3u);
  // Node holds its own refs; releasing ours keeps kids alive through N.
  A.release(L1);
  A.release(L2);
  EXPECT_EQ(A.liveNodes(), 3u);
  A.release(N);
  EXPECT_EQ(A.liveNodes(), 0u);
}

TEST(TraceArena, SharingKeepsOneCopy) {
  TraceArena A;
  TraceNode *L = A.leaf(5.0);
  TraceNode *Kids[2] = {L, L};
  TraceNode *N = A.node(Opcode::MulF64, 1, 25.0, Kids, 2);
  // x*x shares the kid node.
  EXPECT_EQ(N->Kids[0], N->Kids[1]);
  EXPECT_EQ(A.liveNodes(), 2u);
  A.release(L);
  A.release(N);
  EXPECT_EQ(A.liveNodes(), 0u);
}

TEST(TraceArena, DepthBoundTrimsDeepChains) {
  TraceArena A(/*MaxDepth=*/4);
  TraceNode *Cur = A.leaf(0.0);
  for (int I = 1; I <= 20; ++I) {
    TraceNode *Kids[1] = {Cur};
    TraceNode *Next = A.node(Opcode::SqrtF64, 1, double(I), Kids, 1);
    A.release(Cur);
    Cur = Next;
    EXPECT_LE(Cur->Depth, 4u);
  }
  A.release(Cur);
}

TEST(TraceArena, DepthOneKeepsOnlyTheOperation) {
  TraceArena A(/*MaxDepth=*/1);
  TraceNode *L1 = A.leaf(1.0);
  TraceNode *Kids1[1] = {L1};
  TraceNode *Inner = A.node(Opcode::ExpF64, 1, 2.7, Kids1, 1);
  TraceNode *Kids2[1] = {Inner};
  TraceNode *Outer = A.node(Opcode::LogF64, 2, 1.0, Kids2, 1);
  // Outer's child must be a leaf carrying Inner's value, not Inner itself.
  EXPECT_EQ(Outer->Kids[0]->Kind, TraceNode::TNKind::Leaf);
  EXPECT_EQ(Outer->Kids[0]->Value, 2.7);
  A.release(L1);
  A.release(Inner);
  A.release(Outer);
}

TEST(TraceArena, EquivalenceRespectsValuesAndStructure) {
  TraceArena A;
  TraceNode *L1 = A.leaf(1.0);
  TraceNode *L2 = A.leaf(1.0);
  TraceNode *L3 = A.leaf(2.0);
  EXPECT_TRUE(A.equivalent(L1, L2));
  EXPECT_FALSE(A.equivalent(L1, L3));
  TraceNode *KidsA[2] = {L1, L3};
  TraceNode *KidsB[2] = {L2, L3};
  TraceNode *NA = A.node(Opcode::AddF64, 1, 3.0, KidsA, 2);
  TraceNode *NB = A.node(Opcode::AddF64, 9, 3.0, KidsB, 2);
  TraceNode *NC = A.node(Opcode::SubF64, 9, 3.0, KidsB, 2);
  EXPECT_TRUE(A.equivalent(NA, NB)); // site does not matter
  EXPECT_FALSE(A.equivalent(NA, NC));
  for (TraceNode *N : {L1, L2, L3, NA, NB, NC})
    A.release(N);
}

//===----------------------------------------------------------------------===//
// Symbolize and anti-unify
//===----------------------------------------------------------------------===//

namespace {
struct AUFixture : ::testing::Test {
  TraceArena A{64, 5};
  uint32_t NextVar = 0;
  std::vector<VarBinding> Bindings;

  /// trace of (x + 1) for a given x value.
  TraceNode *addOne(double X) {
    TraceNode *L = A.leaf(X);
    TraceNode *One = A.leaf(1.0);
    TraceNode *Kids[2] = {L, One};
    TraceNode *N = A.node(Opcode::AddF64, 11, X + 1, Kids, 2);
    A.release(L);
    A.release(One);
    return N;
  }
};
} // namespace

TEST_F(AUFixture, FirstTraceBecomesConstants) {
  TraceNode *T = addOne(2.0);
  auto E = symbolize(A, T);
  EXPECT_EQ(E->fpcoreBody(), "(+ 2 1)");
  EXPECT_EQ(E->numVars(), 0u);
  A.release(T);
}

TEST_F(AUFixture, VaryingLeafBecomesVariableConstantStays) {
  TraceNode *T1 = addOne(2.0);
  auto E = symbolize(A, T1);
  TraceNode *T2 = addOne(3.0);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->fpcoreBody(), "(+ x 1)");
  ASSERT_EQ(Bindings.size(), 1u);
  EXPECT_EQ(Bindings[0].Idx, 0u);
  EXPECT_EQ(Bindings[0].Value, 3.0);
  // Third round: variable stays stable.
  TraceNode *T3 = addOne(5.0);
  E = antiUnify(A, E.get(), T3, NextVar, Bindings);
  EXPECT_EQ(E->fpcoreBody(), "(+ x 1)");
  ASSERT_EQ(Bindings.size(), 1u);
  EXPECT_EQ(Bindings[0].Value, 5.0);
  A.release(T1);
  A.release(T2);
  A.release(T3);
}

TEST_F(AUFixture, EquivalentSubtreesShareOneVariable) {
  // x*x: both kids are the same value each round => one variable.
  auto Square = [&](double X) {
    TraceNode *L = A.leaf(X);
    TraceNode *Kids[2] = {L, L};
    TraceNode *N = A.node(Opcode::MulF64, 3, X * X, Kids, 2);
    A.release(L);
    return N;
  };
  TraceNode *T1 = Square(2.0);
  auto E = symbolize(A, T1);
  TraceNode *T2 = Square(3.0);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->fpcoreBody(), "(* x x)");
  EXPECT_EQ(E->numVars(), 1u);
  A.release(T1);
  A.release(T2);
}

TEST_F(AUFixture, IndependentLeavesGetDistinctVariables) {
  auto Mul = [&](double X, double Y) {
    TraceNode *L1 = A.leaf(X);
    TraceNode *L2 = A.leaf(Y);
    TraceNode *Kids[2] = {L1, L2};
    TraceNode *N = A.node(Opcode::MulF64, 3, X * Y, Kids, 2);
    A.release(L1);
    A.release(L2);
    return N;
  };
  TraceNode *T1 = Mul(2.0, 7.0);
  auto E = symbolize(A, T1);
  TraceNode *T2 = Mul(3.0, 8.0);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->fpcoreBody(), "(* x y)");
  EXPECT_EQ(E->numVars(), 2u);
  A.release(T1);
  A.release(T2);
}

TEST_F(AUFixture, StructuralMismatchGeneralizesToVariable) {
  // (x + 1) vs (sqrt(y) + 1): first kid generalizes to a variable.
  TraceNode *T1 = addOne(2.0);
  auto E = symbolize(A, T1);
  TraceNode *L = A.leaf(9.0);
  TraceNode *SqrtKids[1] = {L};
  TraceNode *Sq = A.node(Opcode::SqrtF64, 5, 3.0, SqrtKids, 1);
  TraceNode *One = A.leaf(1.0);
  TraceNode *AddKids[2] = {Sq, One};
  TraceNode *T2 = A.node(Opcode::AddF64, 11, 4.0, AddKids, 2);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->fpcoreBody(), "(+ x 1)");
  // The variable bound the sqrt subtree's VALUE this round.
  ASSERT_EQ(Bindings.size(), 1u);
  EXPECT_EQ(Bindings[0].Value, 3.0);
  for (TraceNode *N : {T1, L, Sq, One, T2})
    A.release(N);
}

TEST_F(AUFixture, DifferentOpsCollapseToVariable) {
  TraceNode *T1 = addOne(2.0);
  auto E = symbolize(A, T1);
  TraceNode *L1 = A.leaf(2.0);
  TraceNode *L2 = A.leaf(1.0);
  TraceNode *Kids[2] = {L1, L2};
  TraceNode *T2 = A.node(Opcode::SubF64, 11, 1.0, Kids, 2);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->Kind, SymExpr::SEKind::Var);
  for (TraceNode *N : {T1, L1, L2, T2})
    A.release(N);
}

TEST_F(AUFixture, SplitVariablesWhenValuesDiverge) {
  // Rounds 1-2 make (* x x); round 3 has different kid values, so the
  // variable must split.
  auto Mul = [&](double X, double Y) {
    TraceNode *L1 = A.leaf(X);
    TraceNode *L2 = A.leaf(Y);
    TraceNode *Kids[2] = {L1, L2};
    TraceNode *N = A.node(Opcode::MulF64, 3, X * Y, Kids, 2);
    A.release(L1);
    A.release(L2);
    return N;
  };
  TraceNode *T1 = Mul(2.0, 2.0);
  auto E = symbolize(A, T1);
  TraceNode *T2 = Mul(3.0, 3.0);
  E = antiUnify(A, E.get(), T2, NextVar, Bindings);
  EXPECT_EQ(E->numVars(), 1u);
  TraceNode *T3 = Mul(4.0, 5.0);
  E = antiUnify(A, E.get(), T3, NextVar, Bindings);
  EXPECT_EQ(E->numVars(), 2u);
  EXPECT_EQ(E->Kids[0]->Kind, SymExpr::SEKind::Var);
  EXPECT_EQ(E->Kids[1]->Kind, SymExpr::SEKind::Var);
  EXPECT_NE(E->Kids[0]->VarIdx, E->Kids[1]->VarIdx);
  for (TraceNode *N : {T1, T2, T3})
    A.release(N);
}

TEST_F(AUFixture, GeneralizationIsIdempotentOnRepeatedTraces) {
  TraceNode *T1 = addOne(2.0);
  auto E1 = symbolize(A, T1);
  TraceNode *T2 = addOne(3.0);
  auto E2 = antiUnify(A, E1.get(), T2, NextVar, Bindings);
  std::string Stable = E2->fpcoreBody();
  for (int I = 0; I < 5; ++I) {
    TraceNode *T = addOne(3.0);
    E2 = antiUnify(A, E2.get(), T, NextVar, Bindings);
    EXPECT_EQ(E2->fpcoreBody(), Stable);
    A.release(T);
  }
  A.release(T1);
  A.release(T2);
}

TEST(SymExpr, OpCountAndPrinting) {
  // (- (sqrt (+ (* x x) (* y y))) x): the paper's plotter root cause.
  auto X = SymExpr::makeVar(0);
  auto Y = SymExpr::makeVar(1);
  auto Sq1 = SymExpr::makeOp(Opcode::MulF64, 1);
  Sq1->Kids.push_back(X->clone());
  Sq1->Kids.push_back(X->clone());
  auto Sq2 = SymExpr::makeOp(Opcode::MulF64, 2);
  Sq2->Kids.push_back(Y->clone());
  Sq2->Kids.push_back(Y->clone());
  auto Add = SymExpr::makeOp(Opcode::AddF64, 3);
  Add->Kids.push_back(std::move(Sq1));
  Add->Kids.push_back(std::move(Sq2));
  auto Sqrt = SymExpr::makeOp(Opcode::SqrtF64, 4);
  Sqrt->Kids.push_back(std::move(Add));
  auto Sub = SymExpr::makeOp(Opcode::SubF64, 5);
  Sub->Kids.push_back(std::move(Sqrt));
  Sub->Kids.push_back(X->clone());
  EXPECT_EQ(Sub->fpcoreBody(), "(- (sqrt (+ (* x x) (* y y))) x)");
  EXPECT_EQ(Sub->opCount(), 5u);
  EXPECT_EQ(Sub->numVars(), 2u);
}
