//===- tests/test_realmath.cpp - Transcendental function tests ------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Oracle: glibc's libm, which is faithful (mostly correctly rounded) for the
// functions under test. BigFloat at 256 bits rounded to double must land
// within a couple of ulps of libm; for most inputs it should be bit-equal.
//
//===----------------------------------------------------------------------===//

#include "real/RealMath.h"

#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace herbgrind;

namespace {

const double Inf = std::numeric_limits<double>::infinity();

/// Asserts |ours - libm| <= Tol ulps (NaNs must agree).
void expectClose(double Ours, double Libm, double Input, const char *What,
                 uint64_t Tol = 2) {
  if (std::isnan(Libm)) {
    EXPECT_TRUE(std::isnan(Ours)) << What << "(" << Input << ")";
    return;
  }
  ASSERT_FALSE(std::isnan(Ours)) << What << "(" << Input << ")";
  EXPECT_LE(ulpsBetweenDoubles(Ours, Libm), Tol)
      << What << "(" << Input << ") = " << Ours << " vs libm " << Libm;
}

using UnaryReal = BigFloat (*)(const BigFloat &);
using UnaryLibm = double (*)(double);

struct UnaryCase {
  const char *Name;
  UnaryReal Ours;
  UnaryLibm Libm;
  double Lo, Hi;   ///< Sampling range.
  uint64_t TolUlps;
};

class UnaryMathTest : public ::testing::TestWithParam<UnaryCase> {};

} // namespace

TEST_P(UnaryMathTest, AgreesWithLibmOnRange) {
  const UnaryCase &C = GetParam();
  Rng R(777);
  for (int I = 0; I < 2000; ++I) {
    double X = R.betweenOrdinals(C.Lo, C.Hi);
    double Libm = C.Libm(X);
    double Ours = C.Ours(BigFloat::fromDouble(X, 256)).toDouble();
    expectClose(Ours, Libm, X, C.Name, C.TolUlps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnaryMathTest,
    ::testing::Values(
        UnaryCase{"exp", realmath::exp, std::exp, -700.0, 700.0, 1},
        UnaryCase{"expm1", realmath::expm1, std::expm1, -50.0, 50.0, 1},
        UnaryCase{"exp2", realmath::exp2, std::exp2, -1000.0, 1000.0, 1},
        UnaryCase{"log", realmath::log, std::log, 1e-300, 1e300, 1},
        UnaryCase{"log2", realmath::log2, std::log2, 1e-300, 1e300, 1},
        UnaryCase{"log10", realmath::log10, std::log10, 1e-300, 1e300, 1},
        UnaryCase{"log1p", realmath::log1p, std::log1p, -0.999, 1e10, 1},
        UnaryCase{"sin", realmath::sin, std::sin, -100.0, 100.0, 1},
        UnaryCase{"cos", realmath::cos, std::cos, -100.0, 100.0, 1},
        UnaryCase{"tan", realmath::tan, std::tan, -100.0, 100.0, 1},
        UnaryCase{"asin", realmath::asin, std::asin, -1.0, 1.0, 1},
        UnaryCase{"acos", realmath::acos, std::acos, -1.0, 1.0, 1},
        UnaryCase{"atan", realmath::atan, std::atan, -1e10, 1e10, 1},
        UnaryCase{"sinh", realmath::sinh, std::sinh, -700.0, 700.0, 1},
        UnaryCase{"cosh", realmath::cosh, std::cosh, -700.0, 700.0, 1},
        UnaryCase{"tanh", realmath::tanh, std::tanh, -50.0, 50.0, 1},
        // glibc's cbrt is itself only faithful to a few ulps (cubing both
        // candidates at 512 bits shows ours is often the closer one).
        UnaryCase{"cbrt", realmath::cbrt, std::cbrt, -1e300, 1e300, 4}),
    [](const ::testing::TestParamInfo<UnaryCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

TEST(RealMath, PiMatchesKnownDigits) {
  EXPECT_EQ(realmath::pi(256).toDouble(), M_PI);
  // First limb beyond double precision: pi to 128 bits is
  // 3.243f6a8885a308d313198a2e03707344a4... / 2^... -- check via a second
  // route: sin(pi) must be ~0 at high precision.
  BigFloat SinPi = realmath::sin(realmath::pi(512));
  EXPECT_TRUE(SinPi.isZero() || SinPi.exponent() < -500);
}

TEST(RealMath, Ln2MatchesLibm) {
  EXPECT_EQ(realmath::ln2(256).toDouble(), M_LN2);
  BigFloat ExpLn2 = realmath::exp(realmath::ln2(512));
  BigFloat Diff = BigFloat::sub(ExpLn2, BigFloat::fromInt64(2, 512)).abs();
  EXPECT_TRUE(Diff.isZero() || Diff.exponent() < -490);
}

TEST(RealMath, Ln10AndE) {
  EXPECT_EQ(realmath::ln10(256).toDouble(), M_LN10);
  EXPECT_EQ(realmath::eulerE(256).toDouble(), M_E);
}

TEST(RealMath, ConstantCacheServesGrowingPrecisions) {
  BigFloat A = realmath::pi(128);
  BigFloat B = realmath::pi(1024);
  BigFloat C = realmath::pi(128);
  EXPECT_EQ(BigFloat::cmp(A, C), 0);
  EXPECT_EQ(B.precisionBits(), 1024u);
}

//===----------------------------------------------------------------------===//
// Specials and directed cases
//===----------------------------------------------------------------------===//

TEST(RealMath, ExpSpecials) {
  EXPECT_TRUE(realmath::exp(BigFloat::nan()).isNaN());
  EXPECT_TRUE(realmath::exp(BigFloat::inf(false)).isInf());
  EXPECT_TRUE(realmath::exp(BigFloat::inf(true)).isZero());
  EXPECT_EQ(realmath::exp(BigFloat::zero()).toDouble(), 1.0);
  EXPECT_EQ(realmath::exp(BigFloat::fromDouble(1e20)).toDouble(), Inf);
  EXPECT_EQ(realmath::exp(BigFloat::fromDouble(-1e20)).toDouble(), 0.0);
}

TEST(RealMath, LogSpecials) {
  EXPECT_TRUE(realmath::log(BigFloat::fromDouble(-1.0)).isNaN());
  EXPECT_TRUE(realmath::log(BigFloat::zero()).isInf());
  EXPECT_TRUE(realmath::log(BigFloat::zero()).isNegative());
  EXPECT_TRUE(realmath::log(BigFloat::inf(false)).isInf());
  EXPECT_EQ(realmath::log(BigFloat::fromInt64(1)).toDouble(), 0.0);
}

TEST(RealMath, Log1pSpecials) {
  EXPECT_TRUE(realmath::log1p(BigFloat::fromDouble(-1.0)).isInf());
  EXPECT_TRUE(realmath::log1p(BigFloat::fromDouble(-1.5)).isNaN());
  // log1p of a tiny x is ~x, not 0 (the whole reason expm1/log1p exist).
  double Tiny = 1e-30;
  double V = realmath::log1p(BigFloat::fromDouble(Tiny)).toDouble();
  EXPECT_EQ(V, std::log1p(Tiny));
  EXPECT_NE(V, 0.0);
}

TEST(RealMath, TrigSpecials) {
  EXPECT_TRUE(realmath::sin(BigFloat::inf(false)).isNaN());
  EXPECT_TRUE(realmath::cos(BigFloat::inf(true)).isNaN());
  EXPECT_TRUE(realmath::sin(BigFloat::zero(true)).isZero());
  EXPECT_TRUE(realmath::sin(BigFloat::zero(true)).isNegative());
  EXPECT_EQ(realmath::cos(BigFloat::zero()).toDouble(), 1.0);
}

TEST(RealMath, SinOfHugeArgumentsMatchesLibm) {
  // Payne-Hanek-style reduction: the classic killer cases.
  for (double X : {1e10, 1e15, 1e22, 1e100, 1e300, -1e300, 123456789.0,
                   1.0e308}) {
    expectClose(realmath::sin(BigFloat::fromDouble(X, 256)).toDouble(),
                std::sin(X), X, "sin", 1);
    expectClose(realmath::cos(BigFloat::fromDouble(X, 256)).toDouble(),
                std::cos(X), X, "cos", 1);
  }
}

TEST(RealMath, Atan2QuadrantsAndSpecials) {
  struct Case {
    double Y, X;
  };
  for (Case C : std::initializer_list<Case>{{1, 1},
                                            {1, -1},
                                            {-1, 1},
                                            {-1, -1},
                                            {0.0, 1.0},
                                            {0.0, -1.0},
                                            {-0.0, 1.0},
                                            {-0.0, -1.0},
                                            {1.0, 0.0},
                                            {-1.0, 0.0},
                                            {0.0, 0.0},
                                            {-0.0, -0.0},
                                            {Inf, 1.0},
                                            {-Inf, 1.0},
                                            {1.0, Inf},
                                            {1.0, -Inf},
                                            {Inf, Inf},
                                            {Inf, -Inf},
                                            {-Inf, -Inf}}) {
    double Libm = std::atan2(C.Y, C.X);
    double Ours = realmath::atan2(BigFloat::fromDouble(C.Y),
                                  BigFloat::fromDouble(C.X))
                      .toDouble();
    EXPECT_LE(ulpsBetweenDoubles(Ours, Libm), 1u)
        << "atan2(" << C.Y << ", " << C.X << ")";
    EXPECT_EQ(std::signbit(Ours), std::signbit(Libm))
        << "atan2(" << C.Y << ", " << C.X << ")";
  }
}

TEST(RealMath, Atan2RandomAgreesWithLibm) {
  Rng R(888);
  for (int I = 0; I < 2000; ++I) {
    double Y = R.betweenOrdinals(-1e20, 1e20);
    double X = R.betweenOrdinals(-1e20, 1e20);
    expectClose(
        realmath::atan2(BigFloat::fromDouble(Y), BigFloat::fromDouble(X))
            .toDouble(),
        std::atan2(Y, X), Y, "atan2", 1);
  }
}

TEST(RealMath, PowSpecialLadder) {
  struct Case {
    double X, Y;
  };
  double NaN = std::nan("");
  for (Case C : std::initializer_list<Case>{
           {1.0, NaN},   {NaN, 0.0},     {2.0, Inf},    {0.5, Inf},
           {2.0, -Inf},  {0.5, -Inf},    {-1.0, Inf},   {0.0, 3.0},
           {-0.0, 3.0},  {0.0, -2.0},    {-0.0, -3.0},  {Inf, 2.0},
           {Inf, -2.0},  {-Inf, 3.0},    {-Inf, 2.0},   {-Inf, -3.0},
           {-2.0, 3.0},  {-2.0, 2.0},    {-2.0, 0.5},   {0.0, 0.0},
           {8.0, 1.0 / 3.0}}) {
    double Libm = std::pow(C.X, C.Y);
    double Ours = realmath::pow(BigFloat::fromDouble(C.X),
                                BigFloat::fromDouble(C.Y))
                      .toDouble();
    if (std::isnan(Libm)) {
      EXPECT_TRUE(std::isnan(Ours)) << "pow(" << C.X << ", " << C.Y << ")";
    } else {
      EXPECT_LE(ulpsBetweenDoubles(Ours, Libm), 1u)
          << "pow(" << C.X << ", " << C.Y << ") = " << Ours << " vs " << Libm;
    }
  }
}

TEST(RealMath, PowRandomAgreesWithLibm) {
  Rng R(999);
  for (int I = 0; I < 1000; ++I) {
    double X = R.betweenOrdinals(1e-10, 1e10);
    double Y = R.uniformReal(-30.0, 30.0);
    double Libm = std::pow(X, Y);
    if (std::isinf(Libm) || Libm == 0.0)
      continue; // overflow/underflow boundary: BigFloat keeps going
    expectClose(realmath::pow(BigFloat::fromDouble(X, 256),
                              BigFloat::fromDouble(Y, 256))
                    .toDouble(),
                Libm, X, "pow", 2);
  }
}

TEST(RealMath, PowIntegerExponentsExact) {
  Rng R(1000);
  for (int I = 0; I < 1000; ++I) {
    double X = R.uniformReal(-10.0, 10.0);
    int N = static_cast<int>(R.nextBelow(20)) - 10;
    double Libm = std::pow(X, N);
    if (!std::isfinite(Libm) || X == 0.0)
      continue;
    expectClose(realmath::pow(BigFloat::fromDouble(X, 256),
                              BigFloat::fromInt64(N, 256))
                    .toDouble(),
                Libm, X, "pow-int", 1);
  }
}

TEST(RealMath, HypotNoOverflow) {
  // The textbook motivation: naive sqrt(x^2+y^2) overflows, hypot must not.
  double Big = 1e200;
  double Ours = realmath::hypot(BigFloat::fromDouble(Big),
                                BigFloat::fromDouble(Big))
                    .toDouble();
  EXPECT_LE(ulpsBetweenDoubles(Ours, std::hypot(Big, Big)), 1u);
  EXPECT_TRUE(realmath::hypot(BigFloat::inf(true), BigFloat::nan()).isInf());
}

TEST(RealMath, HypotRandom) {
  Rng R(1001);
  for (int I = 0; I < 2000; ++I) {
    double X = R.betweenOrdinals(-1e150, 1e150);
    double Y = R.betweenOrdinals(-1e150, 1e150);
    expectClose(
        realmath::hypot(BigFloat::fromDouble(X), BigFloat::fromDouble(Y))
            .toDouble(),
        std::hypot(X, Y), X, "hypot", 1);
  }
}

TEST(RealMath, FmodMatchesLibmExactly) {
  // fmod is exact in IEEE arithmetic, so we demand bit equality.
  Rng R(1002);
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniformReal(-1e6, 1e6);
    double Y = R.uniformReal(-100.0, 100.0);
    if (Y == 0.0)
      continue;
    double Libm = std::fmod(X, Y);
    double Ours = realmath::fmod(BigFloat::fromDouble(X, 256),
                                 BigFloat::fromDouble(Y, 256))
                      .toDouble();
    EXPECT_EQ(bitsOfDouble(Ours), bitsOfDouble(Libm))
        << "fmod(" << X << ", " << Y << ")";
  }
}

TEST(RealMath, FmodHugeQuotient) {
  double X = 1e300;
  double Y = 3.25;
  double Ours = realmath::fmod(BigFloat::fromDouble(X, 256),
                               BigFloat::fromDouble(Y, 256))
                    .toDouble();
  EXPECT_EQ(Ours, std::fmod(X, Y));
}

TEST(RealMath, RemainderMatchesLibm) {
  Rng R(1003);
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniformReal(-1e6, 1e6);
    double Y = R.uniformReal(-100.0, 100.0);
    if (Y == 0.0)
      continue;
    double Libm = std::remainder(X, Y);
    double Ours = realmath::remainder(BigFloat::fromDouble(X, 256),
                                      BigFloat::fromDouble(Y, 256))
                      .toDouble();
    EXPECT_EQ(bitsOfDouble(Ours), bitsOfDouble(Libm))
        << "remainder(" << X << ", " << Y << ")";
  }
}

TEST(RealMath, TanhSaturates) {
  EXPECT_EQ(realmath::tanh(BigFloat::fromDouble(1000.0)).toDouble(), 1.0);
  EXPECT_EQ(realmath::tanh(BigFloat::fromDouble(-1000.0)).toDouble(), -1.0);
  EXPECT_EQ(realmath::tanh(BigFloat::inf(false)).toDouble(), 1.0);
}

TEST(RealMath, TinyArgumentsKeepRelativeAccuracy) {
  // sin(x) ~ x - x^3/6 for tiny x: the series must not flush to zero.
  for (double X : {1e-20, 1e-100, 1e-300, -1e-20}) {
    EXPECT_EQ(realmath::sin(BigFloat::fromDouble(X, 256)).toDouble(),
              std::sin(X))
        << X;
    EXPECT_EQ(realmath::atan(BigFloat::fromDouble(X, 256)).toDouble(),
              std::atan(X))
        << X;
    EXPECT_EQ(realmath::sinh(BigFloat::fromDouble(X, 256)).toDouble(),
              std::sinh(X))
        << X;
    EXPECT_EQ(realmath::expm1(BigFloat::fromDouble(X, 256)).toDouble(),
              std::expm1(X))
        << X;
  }
}
