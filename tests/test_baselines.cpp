//===- tests/test_baselines.cpp - FpDebug/Verrou/BZ baseline tests --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "herbgrind/Herbgrind.h"

#include <gtest/gtest.h>

using namespace herbgrind;

namespace {

Program cancellationKernel() {
  ProgramBuilder B;
  B.setLoc(SourceLoc("cancel.c", 4, "f"));
  auto X = B.input(0);
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  auto Diff = B.op(Opcode::SubF64, Sum, X);
  B.out(Diff);
  B.halt();
  return B.finish();
}

} // namespace

TEST(FpDebug, DetectsErrorAtOpcodeAddress) {
  Program P = cancellationKernel();
  FpDebugResult R = runFpDebug(P, {{1e16}, {2.0}});
  std::vector<uint32_t> Bad = R.erroneousOps(5.0);
  ASSERT_EQ(Bad.size(), 1u);
  EXPECT_EQ(R.Ops.at(Bad[0]).Op, Opcode::SubF64);
  // FpDebug localizes by address only: it has the pc and the raw error
  // statistic, but no expression, no inputs, no output-sensitivity.
  EXPECT_GT(R.Ops.at(Bad[0]).ErrorBits.max(), 40.0);
}

TEST(FpDebug, CleanProgramsStayClean) {
  ProgramBuilder B;
  B.out(B.op(Opcode::MulF64, B.input(0), B.constF64(2.0)));
  B.halt();
  FpDebugResult R = runFpDebug(B.finish(), {{3.0}, {1e300}});
  EXPECT_TRUE(R.erroneousOps(1.0).empty());
}

TEST(FpDebug, ShadowsFlowThroughMemory) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  auto Addr = B.constI64(64);
  B.store(Addr, 0, Sum);
  auto Back = B.load(Addr, 0, ValueType::F64);
  auto Diff = B.op(Opcode::SubF64, Back, X);
  B.out(Diff);
  B.halt();
  FpDebugResult R = runFpDebug(B.finish(), {{1e16}});
  EXPECT_FALSE(R.erroneousOps(5.0).empty());
}

TEST(Verrou, StableComputationKeepsBits) {
  ProgramBuilder B;
  B.out(B.op(Opcode::MulF64, B.input(0), B.constF64(2.0)));
  B.halt();
  VerrouResult R = runVerrou(B.finish(), {3.5}, 16);
  ASSERT_EQ(R.Outputs.size(), 1u);
  EXPECT_GT(R.Outputs[0].StableBits, 50.0);
}

TEST(Verrou, CancellationDestabilizesOutputs) {
  // sqrt(x+1)-sqrt(x) at large x: random rounding perturbs the result
  // catastrophically relative to its magnitude.
  ProgramBuilder B;
  auto X = B.input(0);
  auto A = B.op(Opcode::SqrtF64, B.op(Opcode::AddF64, X, B.constF64(1.0)));
  auto C = B.op(Opcode::SqrtF64, X);
  B.out(B.op(Opcode::SubF64, A, C));
  B.halt();
  VerrouResult R = runVerrou(B.finish(), {1e15}, 16);
  ASSERT_EQ(R.Outputs.size(), 1u);
  EXPECT_LT(R.Outputs[0].StableBits, 30.0);
}

TEST(Verrou, ReportsNothingAboutLocations) {
  // Table 1's "Localization: None" row: the Verrou result type carries
  // only per-output stability, never per-op information. Documented here
  // so a future change to that shape shows up as a test edit.
  VerrouResult R;
  EXPECT_TRUE(R.Outputs.empty());
  EXPECT_EQ(sizeof(VerrouResult),
            sizeof(std::vector<VerrouOutputStat>) + sizeof(uint64_t));
}

TEST(BZ, FlagsCancellationSuspects) {
  Program P = cancellationKernel();
  BZResult R = runBZ(P, {{1e16}});
  EXPECT_EQ(R.SuspectOps.size(), 1u);
  EXPECT_GT(R.SuspectEvents, 0u);
}

TEST(BZ, HasFalsePositivesOnCompensatedCode) {
  // Two-sum: the compensating subtraction cancels by design; BZ flags it,
  // Herbgrind (with compensation detection) does not report it.
  ProgramBuilder B;
  auto A = B.input(0);
  auto Bv = B.input(1);
  auto S = B.op(Opcode::AddF64, A, Bv);
  auto BV = B.op(Opcode::SubF64, S, A);
  auto Err = B.op(Opcode::SubF64, Bv, BV);
  auto Fixed = B.op(Opcode::AddF64, S, Err);
  B.out(Fixed);
  B.halt();
  Program P = B.finish();

  BZResult BZ = runBZ(P, {{1.0, 1e-17}});
  EXPECT_FALSE(BZ.SuspectOps.empty()) << "BZ should false-positive here";

  Herbgrind HG(P);
  HG.runOnInput({1.0, 1e-17});
  EXPECT_TRUE(HG.reportedRootCauses().empty())
      << "Herbgrind should not report the compensated two-sum";
}

TEST(BZ, CountsDiscreteFactors) {
  // A comparison of nearly-equal values: a discrete factor event.
  ProgramBuilder B;
  auto X = B.input(0);
  auto Y = B.op(Opcode::AddF64, X, B.constF64(1e-13));
  auto C = B.op(Opcode::CmpLTF64, X, Y);
  auto L = B.newLabel();
  B.branchIf(C, L);
  B.bind(L);
  B.out(X);
  B.halt();
  BZResult R = runBZ(B.finish(), {{1.0}});
  EXPECT_GT(R.DiscreteFactorEvents, 0u);
}

TEST(Baselines, OverheadOrderingMatchesTable1) {
  // Instruction-count proxy for Table 1's overhead row: BZ and Verrou stay
  // close to native; FpDebug and Herbgrind pay for shadow reals.
  Program P = cancellationKernel();
  RunResult Native = interpret(P, {1e16});
  BZResult BZ = runBZ(P, {{1e16}});
  EXPECT_EQ(BZ.Steps, Native.Steps);
  // The real comparison is wall-clock, measured by bench_table1_overhead;
  // here we only sanity-check that every mode completes and agrees on the
  // concrete semantics.
  VerrouResult V = runVerrou(P, {1e16}, 4);
  ASSERT_EQ(V.Outputs.size(), 1u);
  FpDebugResult F = runFpDebug(P, {{1e16}});
  EXPECT_EQ(F.Steps, Native.Steps);
}
