//===- tests/test_batch_improve.cpp - Corpus-wide repair pass tests -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The batch improver's contract: (1) outcomes attach to every reported
// root cause and are byte-identical across worker counts; (2) improving
// a report rebuilt from merged shard documents is byte-identical to
// improving the equivalent live sweep, at --jobs 1 and --jobs 4; (3)
// outcomes persist and reload through engine::ResultCache, with the
// improver config folded into the entry identity so changed settings
// invalidate instead of silently reusing.
//
//===----------------------------------------------------------------------===//

#include "engine/ResultCache.h"
#include "fpcore/Corpus.h"
#include "improve/BatchImprove.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

using namespace herbgrind;
using namespace herbgrind::engine;
using namespace herbgrind::improve;

namespace {

/// A scoped temp directory under the system temp root.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-improve-" + Tag + "-" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

/// Benchmarks with reliably erroneous spots at small sample counts (the
/// paper's NMSE family), so the improver always has candidates.
std::vector<fpcore::Core> erroneousBenchmarks() {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus())
    if (C.Name == "NMSE example 3.1" || C.Name == "NMSE example 3.3" ||
        C.Name == "NMSE problem 3.3.3")
      Cores.push_back(C.clone());
  return Cores;
}

EngineConfig smallConfig(unsigned Jobs) {
  EngineConfig Cfg;
  Cfg.Jobs = Jobs;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 4;
  return Cfg;
}

BatchImproveConfig smallImprove(unsigned Jobs) {
  BatchImproveConfig BCfg;
  BCfg.Jobs = Jobs;
  BCfg.Improve.SampleCount = 48;
  return BCfg;
}

uint64_t totalCandidates(const BatchResult &R) {
  uint64_t N = 0;
  for (const BenchmarkResult &BR : R.Benchmarks)
    N += BR.Rep.Improvements.size();
  return N;
}

} // namespace

TEST(BatchImprove, AttachesOutcomesForEveryRootCauseJobsInvariantly) {
  std::vector<fpcore::Core> Cores = erroneousBenchmarks();
  ASSERT_GE(Cores.size(), 2u);

  BatchResult One = Engine(smallConfig(1)).run(Cores);
  BatchImproveStats S1 = batchImprove(One, smallImprove(1));
  BatchResult Four = Engine(smallConfig(4)).run(Cores);
  BatchImproveStats S4 = batchImprove(Four, smallImprove(4));

  EXPECT_GT(S1.Candidates, 0u);
  EXPECT_GT(S1.Improved, 0u);
  EXPECT_EQ(S1.Candidates, S4.Candidates);
  EXPECT_EQ(S1.Improved, S4.Improved);
  EXPECT_EQ(One.renderJson(), Four.renderJson());

  // Every reported root cause got an outcome, in ascending pc order.
  for (const BenchmarkResult &BR : One.Benchmarks) {
    EXPECT_EQ(BR.Rep.Improvements.size(), BR.Rep.allRootCauses().size())
        << BR.Name;
    for (size_t I = 1; I < BR.Rep.Improvements.size(); ++I)
      EXPECT_LT(BR.Rep.Improvements[I - 1].PC, BR.Rep.Improvements[I].PC);
    for (const ImproveRecord &IR : BR.Rep.Improvements) {
      EXPECT_FALSE(IR.Original.empty()) << BR.Name;
      EXPECT_TRUE(std::isfinite(IR.ErrorBefore)) << BR.Name;
      EXPECT_TRUE(std::isfinite(IR.ErrorAfter)) << BR.Name;
      if (IR.Improved) {
        EXPECT_FALSE(IR.Rewritten.empty()) << BR.Name;
        EXPECT_LT(IR.ErrorAfter, IR.ErrorBefore) << BR.Name;
      }
    }
  }

  // The flagship Section 8.1 case: sqrt(x+1) - sqrt(x) gets rationalized.
  const BenchmarkResult *NMSE31 = nullptr;
  for (const BenchmarkResult &BR : One.Benchmarks)
    if (BR.Name == "NMSE example 3.1")
      NMSE31 = &BR;
  ASSERT_NE(NMSE31, nullptr);
  ASSERT_FALSE(NMSE31->Rep.Improvements.empty());
  EXPECT_TRUE(NMSE31->Rep.Improvements[0].Improved);
  EXPECT_TRUE(NMSE31->Rep.Improvements[0].HadSignificantError);
}

TEST(BatchImprove, MergedShardDocumentsImproveByteIdenticallyToLiveSweep) {
  std::vector<fpcore::Core> Cores = erroneousBenchmarks();
  ASSERT_GE(Cores.size(), 2u);

  // The reference: a live sweep plus the improver pass, at jobs 1.
  BatchResult Direct = Engine(smallConfig(1)).run(Cores);
  batchImprove(Direct, smallImprove(1));
  std::string Reference = Direct.renderJson();

  // Two "machines" emit disjoint shard ranges (two shards/benchmark).
  TempDir DirA("emitA"), DirB("emitB");
  EngineConfig CfgA = smallConfig(2);
  CfgA.ShardBegin = 0;
  CfgA.ShardEnd = 1;
  CfgA.EmitShardDir = DirA.Path;
  Engine(CfgA).run(Cores);
  EngineConfig CfgB = smallConfig(2);
  CfgB.ShardBegin = 1;
  CfgB.EmitShardDir = DirB.Path;
  Engine(CfgB).run(Cores);

  std::vector<ShardDoc> Docs;
  for (const std::string &Dir : {DirA.Path, DirB.Path})
    for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
      std::string Text, Err;
      ASSERT_TRUE(readFile(Entry.path().string(), Text));
      ShardDoc Doc;
      ASSERT_TRUE(parseShardJson(Text, Doc, Err)) << Err;
      Docs.push_back(std::move(Doc));
    }
  ASSERT_EQ(Docs.size(), Cores.size() * 2);

  // Merged + improved must reproduce the live bytes at any jobs count.
  for (unsigned Jobs : {1u, 4u}) {
    std::vector<ShardDoc> Copy;
    for (const ShardDoc &D : Docs) {
      ShardDoc C;
      C.ConfigHash = D.ConfigHash;
      C.Benchmark = D.Benchmark;
      C.BenchIndex = D.BenchIndex;
      C.ShardIndex = D.ShardIndex;
      C.RunBegin = D.RunBegin;
      C.RunEnd = D.RunEnd;
      C.Result = D.Result.clone();
      Copy.push_back(std::move(C));
    }
    BatchResult Merged;
    std::string Err, Warnings;
    ASSERT_TRUE(mergeShards(std::move(Copy), Merged, Err, &Warnings)) << Err;
    batchImprove(Merged, smallImprove(Jobs));
    EXPECT_EQ(Merged.renderJson(), Reference) << "jobs " << Jobs;
  }
}

TEST(BatchImprove, OutcomesPersistAndReloadThroughResultCache) {
  std::vector<fpcore::Core> Cores = erroneousBenchmarks();
  TempDir Cache("cache");
  EngineConfig Cfg = smallConfig(2);
  std::string Hash = configHash(Cfg);

  BatchResult Cold = Engine(Cfg).run(Cores);
  ResultCache RC1(Cache.Path, Hash);
  BatchImproveStats SCold = batchImprove(Cold, smallImprove(2), &RC1);
  EXPECT_GT(SCold.AnalyzedRecords, 0u);
  EXPECT_EQ(SCold.CachedRecords, 0u);
  EXPECT_EQ(SCold.AnalyzedRecords, totalCandidates(Cold));

  // A second pass -- fresh engine, fresh cache object, same directory --
  // must satisfy every record from the cache and emit identical bytes.
  BatchResult Warm = Engine(Cfg).run(Cores);
  ResultCache RC2(Cache.Path, Hash);
  BatchImproveStats SWarm = batchImprove(Warm, smallImprove(2), &RC2);
  EXPECT_EQ(SWarm.AnalyzedRecords, 0u);
  EXPECT_EQ(SWarm.CachedRecords, totalCandidates(Warm));
  EXPECT_EQ(Warm.renderJson(), Cold.renderJson());

  // A changed improver configuration must invalidate, never reuse: the
  // improver-config hash is part of every entry's identity.
  BatchResult Changed = Engine(Cfg).run(Cores);
  BatchImproveConfig Other = smallImprove(2);
  Other.Improve.SampleCount = 96;
  ResultCache RC3(Cache.Path, Hash);
  BatchImproveStats SOther = batchImprove(Changed, Other, &RC3);
  EXPECT_EQ(SOther.CachedRecords, 0u);
  EXPECT_EQ(SOther.AnalyzedRecords, totalCandidates(Changed));
}

TEST(BatchImprove, ImproveConfigHashSeparatesEveryKnob) {
  ImproveConfig Base;
  std::vector<std::string> Hashes;
  Hashes.push_back(improveConfigHash(Base));
  ImproveConfig C = Base;
  C.SampleCount = 128;
  Hashes.push_back(improveConfigHash(C));
  C = Base;
  C.PrecBits = 128;
  Hashes.push_back(improveConfigHash(C));
  C = Base;
  C.Seed = 1;
  Hashes.push_back(improveConfigHash(C));
  C = Base;
  C.MinImprovementBits = 0.5;
  Hashes.push_back(improveConfigHash(C));
  C = Base;
  C.SignificantErrorBits = 10.0;
  Hashes.push_back(improveConfigHash(C));
  C = Base;
  C.MaxRounds = 1;
  Hashes.push_back(improveConfigHash(C));
  for (size_t I = 0; I < Hashes.size(); ++I)
    for (size_t J = I + 1; J < Hashes.size(); ++J)
      EXPECT_NE(Hashes[I], Hashes[J]) << I << " vs " << J;
}

TEST(BatchImprove, CorpusMergeKeepsDistinctExpressionsSharingAPc) {
  // Pc spaces are per-program: folding per-benchmark reports into a
  // corpus summary must not collapse improvements for unrelated
  // expressions that happen to share a pc.
  ImproveRecord A;
  A.PC = 3;
  A.Original = "(- (sqrt (+ x 1)) (sqrt x))";
  A.Improved = true;
  ImproveRecord B;
  B.PC = 3;
  B.Original = "(- (exp x) 1)";
  B.Improved = true;

  Report RA, RB;
  RA.Improvements.push_back(A);
  RB.Improvements.push_back(B);
  RA.mergeFrom(RB);
  ASSERT_EQ(RA.Improvements.size(), 2u);
  EXPECT_EQ(RA.Improvements[0].Original, B.Original); // sorted (pc, expr)
  EXPECT_EQ(RA.Improvements[1].Original, A.Original);

  // The same (pc, expression) pair dedups; merging is idempotent.
  RA.mergeFrom(RB);
  EXPECT_EQ(RA.Improvements.size(), 2u);

  // A full-key collision keeps the strongest outcome whatever the fold
  // order: the same expression judged under two recorded regimes.
  ImproveRecord Weak = A;
  Weak.Improved = false;
  Weak.ErrorBefore = 0.2;
  Weak.ErrorAfter = 0.2;
  ImproveRecord Strong = A;
  Strong.ErrorBefore = 30.0;
  Strong.ErrorAfter = 0.5;
  for (bool WeakFirst : {true, false}) {
    Report R1, R2;
    R1.Improvements.push_back(WeakFirst ? Weak : Strong);
    R2.Improvements.push_back(WeakFirst ? Strong : Weak);
    R1.mergeFrom(R2);
    ASSERT_EQ(R1.Improvements.size(), 1u);
    EXPECT_TRUE(R1.Improvements[0].Improved);
    EXPECT_EQ(R1.Improvements[0].ErrorBefore, 30.0);
  }
}

TEST(BatchImprove, CacheEntriesValidateFullIdentity) {
  TempDir Cache("validate");
  ResultCache RC(Cache.Path, "feedbeef00000000");
  ResultCache::ImproveKey Key;
  Key.ExprIdentity = "(- (sqrt (+ x 1)) (sqrt x))";
  Key.SpecIdentity = "[1,1000000000]";
  Key.ImproveHash = improveConfigHash(ImproveConfig{});

  ImproveRecord Rec;
  Rec.Original = Key.ExprIdentity;
  Rec.Rewritten = "(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))";
  Rec.ErrorBefore = 23.5;
  Rec.ErrorAfter = 0.25;
  Rec.HadSignificantError = true;
  Rec.Improved = true;
  RC.storeImprove(Key, Rec);

  ImproveRecord Out;
  ASSERT_TRUE(RC.lookupImprove(Key, Out));
  EXPECT_EQ(Out.Rewritten, Rec.Rewritten);
  EXPECT_EQ(Out.ErrorBefore, Rec.ErrorBefore);
  EXPECT_TRUE(Out.Improved);

  // Any identity component mismatch is a miss, not a wrong answer.
  ResultCache::ImproveKey Wrong = Key;
  Wrong.ImproveHash += "|x";
  EXPECT_FALSE(RC.lookupImprove(Wrong, Out));
  Wrong = Key;
  Wrong.SpecIdentity = "[0,1]";
  EXPECT_FALSE(RC.lookupImprove(Wrong, Out));
  ResultCache Foreign(Cache.Path, "0123456789abcdef");
  EXPECT_FALSE(Foreign.lookupImprove(Key, Out));

  // Corrupt entries read as absent, never as errors.
  {
    std::ofstream Trunc(RC.improveEntryPath(Key),
                        std::ios::binary | std::ios::trunc);
    Trunc << "{\"format\":\"herbgrind-improve\"";
  }
  EXPECT_FALSE(RC.lookupImprove(Key, Out));

  // The GC treats improve entries as cache contents: a zero cap removes
  // them with everything else.
  RC.storeImprove(Key, Rec);
  CacheGcStats Stats;
  std::string Err;
  ASSERT_TRUE(gcCacheDir(Cache.Path, 0, Stats, Err)) << Err;
  EXPECT_GT(Stats.PrunedEntries, 0u);
  EXPECT_FALSE(RC.lookupImprove(Key, Out));
}
