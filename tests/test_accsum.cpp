//===- tests/test_accsum.cpp - Tier-0 clears Kahan, escalates naive -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The accurate-summation split from examples/accsum.cpp, asserted: a
// naive running sum that drops a thousand sub-ulp addends must trip the
// tier-0 output predicate and escalate to the BigFloat shadow, while
// Kahan's compensated loop -- whose *interval* bound would grow exactly
// as fast as the naive one's -- must be cleared by the running-error
// (Delta, Noise) estimate without a single BigFloat operation. The same
// split is then checked through the batch engine's confirm and fast
// tiers, including report byte-identity against the full tier.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "herbgrind/Herbgrind.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace herbgrind;
using native::Real;

namespace {

const int Addends = 1000;

void kernelNaiveSum(native::Context &C, const double *, size_t) {
  Real Sum = C.input(0);
  Real X = C.input(1);
  for (int I = 0; I < Addends; ++I) {
    HG_LOC(C);
    Sum += X;
  }
  HG_LOC(C);
  C.output(Sum);
}

void kernelKahanSum(native::Context &C, const double *, size_t) {
  Real Sum = C.input(0);
  Real X = C.input(1);
  Real Comp = 0.0;
  for (int I = 0; I < Addends; ++I) {
    HG_LOC(C);
    Real Y = X - Comp;
    Real T = Sum + Y;
    Comp = (T - Sum) - Y;
    Sum = T;
  }
  HG_LOC(C);
  C.output(Sum);
}

native::Kernel makeKernel(const char *Name, const char *Tag,
                          void (*Fn)(native::Context &, const double *,
                                     size_t)) {
  native::Kernel K;
  K.Name = Name;
  K.Identity = std::string("accsum-test|v1|") + Tag;
  K.Inputs.push_back({1e15, 1e16});
  K.Inputs.push_back({0.5, 1.5});
  K.Fn = Fn;
  return K;
}

/// Benchmark names whose reports contain at least one spot.
std::set<std::string> flaggedBenchmarks(const engine::BatchResult &R) {
  std::set<std::string> Out;
  for (const engine::BenchmarkResult &BR : R.Benchmarks)
    if (!BR.Rep.Spots.empty())
      Out.insert(BR.Name);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// The tier-0 verdict itself, on the canonical inputs
//===----------------------------------------------------------------------===//

TEST(AccSum, NaiveEscalatesKahanClears) {
  native::Kernel Naive = makeKernel("naive", "naive", kernelNaiveSum);
  native::Kernel Kahan = makeKernel("kahan", "kahan", kernelKahanSum);
  const std::vector<double> In = {1e16, 1.0};

  AnalysisConfig PredCfg;
  PredCfg.PredicateOnly = true;

  native::Context CN(PredCfg);
  CN.run(Naive, In);
  EXPECT_TRUE(CN.lastRunSuspect())
      << "naive summation drops ~1000 ulps; tier 0 must escalate it";

  native::Context CK(PredCfg);
  CK.run(Kahan, In);
  EXPECT_FALSE(CK.lastRunSuspect())
      << "Kahan's compensation re-injects every residual tier 0 tracked; "
         "the running-error estimate must clear it";
}

TEST(AccSum, FullShadowAgreesWithTheVerdicts) {
  // What escalation would find: the full analysis flags naive's output
  // and stays quiet on Kahan -- tier 0's verdicts are not just cheap,
  // they point the same way.
  native::Kernel Naive = makeKernel("naive", "naive", kernelNaiveSum);
  native::Kernel Kahan = makeKernel("kahan", "kahan", kernelKahanSum);
  const std::vector<double> In = {1e16, 1.0};

  native::Context Full((AnalysisConfig()));
  Full.run(Naive, In);
  Full.run(Kahan, In);
  Report Rep = buildReport(Full);
  ASSERT_EQ(Rep.Spots.size(), 1u);
  EXPECT_EQ(Rep.Spots[0].Loc.Function, "kernelNaiveSum");
}

//===----------------------------------------------------------------------===//
// Through the batch engine's tiers
//===----------------------------------------------------------------------===//

TEST(AccSum, ConfirmTierSplitsTheBenchmarks) {
  std::vector<native::Kernel> Kernels;
  Kernels.push_back(makeKernel("accsum naive", "naive", kernelNaiveSum));
  Kernels.push_back(makeKernel("accsum kahan", "kahan", kernelKahanSum));
  std::vector<fpcore::Core> NoCores;

  engine::EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.Tier = engine::TierMode::Confirm;
  engine::BatchResult Confirm = engine::Engine(Cfg).run(NoCores, Kernels);

  // Naive must be confirmed (its random runs drop hundreds of ulps);
  // Kahan may occasionally false-positive on unlucky inputs, but a
  // confirmation of a clean benchmark still reports nothing.
  EXPECT_GE(Confirm.Stats.ConfirmedBenchmarks, 1u);
  EXPECT_GT(Confirm.Stats.Tier0Runs, 0u);
  std::set<std::string> Flagged = flaggedBenchmarks(Confirm);
  EXPECT_EQ(Flagged.count("accsum naive"), 1u);
  EXPECT_EQ(Flagged.count("accsum kahan"), 0u);

  // The headline contract, on this workload too: confirm-tier reports
  // are byte-identical to full-tier reports.
  Cfg.Tier = engine::TierMode::Full;
  engine::BatchResult Full = engine::Engine(Cfg).run(NoCores, Kernels);
  EXPECT_EQ(Full.renderJson(), Confirm.renderJson());
  EXPECT_EQ(Full.Stats.ConfirmedBenchmarks, 0u);
}

TEST(AccSum, FastTierEscalatesOnlyWhatItMust) {
  std::vector<native::Kernel> Kernels;
  Kernels.push_back(makeKernel("accsum naive", "naive", kernelNaiveSum));
  Kernels.push_back(makeKernel("accsum kahan", "kahan", kernelKahanSum));
  std::vector<fpcore::Core> NoCores;

  engine::EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.Tier = engine::TierMode::Fast;
  engine::BatchResult Fast = engine::Engine(Cfg).run(NoCores, Kernels);

  // Every naive run escalates; the suspect set stays strictly below the
  // whole workload (Kahan runs overwhelmingly clear).
  EXPECT_GE(Fast.Stats.EscalatedRuns, 8u);
  EXPECT_LT(Fast.Stats.EscalatedRuns, Fast.Stats.Runs);
  std::set<std::string> Flagged = flaggedBenchmarks(Fast);
  EXPECT_EQ(Flagged.count("accsum naive"), 1u);
  EXPECT_EQ(Flagged.count("accsum kahan"), 0u);
}
