//===- tests/test_serialize.cpp - Wire format & result cache --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The persistence layer's contract: (1) the JSON reader round-trips
// numbers exactly, including the writers' NAN/INFINITY extension; (2)
// parse(render(x)) of an AnalysisResult re-renders byte-identically AND
// merges byte-identically with the in-memory original, corpus-wide; (3)
// presentation reports and batch documents round-trip; (4) unknown major
// versions are rejected; (5) the result cache hits on identical sweeps,
// invalidates on config/seed/FPCore changes, survives corruption, and a
// warm sweep analyzes zero shards while producing identical bytes.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/ResultCache.h"
#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/FloatBits.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

Program cancellationKernel() {
  ProgramBuilder B;
  auto X = B.input(0);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  B.out(T);
  B.halt();
  return B.finish();
}

AnalysisResult analyzeChunk(const Program &P,
                            const std::vector<std::vector<double>> &Inputs,
                            size_t Begin, size_t End) {
  Herbgrind HG(P);
  for (size_t I = Begin; I < End; ++I)
    HG.runOnInput(Inputs[I]);
  return HG.snapshot();
}

/// render -> parse -> assert both re-render identity and report identity.
AnalysisResult roundTrip(const AnalysisResult &R, const std::string &Ctx) {
  std::string Json = renderAnalysisResultJson(R);
  JsonParseResult Parsed = parseJson(Json);
  EXPECT_TRUE(Parsed.Ok) << Ctx << ": " << Parsed.Error;
  AnalysisResult Back;
  std::string Err;
  EXPECT_TRUE(parseAnalysisResultJson(Parsed.Value, Back, Err))
      << Ctx << ": " << Err;
  EXPECT_EQ(renderAnalysisResultJson(Back), Json) << Ctx;
  EXPECT_EQ(buildReport(Back).renderJson(), buildReport(R).renderJson())
      << Ctx;
  return Back;
}

/// A scoped temp directory under the system temp root.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-test-" + Tag + "-" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

std::vector<fpcore::Core> smallCorpusSubset(size_t MaxBenchmarks) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= MaxBenchmarks)
      break;
  }
  return Cores;
}

} // namespace

//===----------------------------------------------------------------------===//
// The JSON reader
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsAndStructure) {
  JsonParseResult R = parseJson(
      "{\"a\":1,\"b\":-2.5e-3,\"c\":\"x\\n\\\"y\\\"\",\"d\":[true,false,"
      "null],\"e\":{\"nested\":[]}}");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Value.isObject());
  EXPECT_EQ(R.Value.field("a")->asU64(), 1u);
  EXPECT_EQ(R.Value.field("b")->asDouble(), -2.5e-3);
  EXPECT_EQ(R.Value.field("c")->Str, "x\n\"y\"");
  ASSERT_TRUE(R.Value.field("d")->isArray());
  EXPECT_EQ(R.Value.field("d")->Arr.size(), 3u);
  EXPECT_TRUE(R.Value.field("d")->Arr[0].BoolVal);
  EXPECT_TRUE(R.Value.field("d")->Arr[2].isNull());
  EXPECT_TRUE(R.Value.field("e")->field("nested")->isArray());
  EXPECT_EQ(R.Value.field("missing"), nullptr);
}

TEST(Json, NumbersRoundTripExactly) {
  for (double X : {0.1, 1.0 / 3.0, 2.061152e-09, -1e308, 4.9e-324, 0.0,
                   1e16, 123456789.123456789}) {
    std::string Doc = "[" + formatDoubleShortest(X) + "]";
    JsonParseResult R = parseJson(Doc);
    ASSERT_TRUE(R.Ok) << Doc;
    EXPECT_EQ(bitsOfDouble(R.Value.Arr[0].asDouble()), bitsOfDouble(X))
        << Doc;
  }
}

TEST(Json, AcceptsTheNonfiniteExtension) {
  JsonParseResult R = parseJson("[NAN,INFINITY,-INFINITY]");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Value.Arr.size(), 3u);
  EXPECT_TRUE(std::isnan(R.Value.Arr[0].asDouble()));
  EXPECT_EQ(R.Value.Arr[1].asDouble(), HUGE_VAL);
  EXPECT_EQ(R.Value.Arr[2].asDouble(), -HUGE_VAL);
}

TEST(Json, DecodesSurrogatePairsAndRejectsLoneSurrogates) {
  JsonParseResult R = parseJson("\"\\ud83d\\ude00\""); // U+1F600
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.Str, "\xf0\x9f\x98\x80");
  EXPECT_FALSE(parseJson("\"\\ud83d\"").Ok);        // unpaired high
  EXPECT_FALSE(parseJson("\"\\ude00\"").Ok);        // unpaired low
  EXPECT_FALSE(parseJson("\"\\ud83d\\u0041\"").Ok); // high + non-low
  EXPECT_FALSE(parseJson("\"\\ud83dx\"").Ok);       // high + literal
}

TEST(Json, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "[1] garbage",
        "\"unterminated", "[1.]", "[1e]", "[+1]", "{1:2}", "[Infinity]"}) {
    EXPECT_FALSE(parseJson(Bad).Ok) << "accepted: " << Bad;
  }
}

TEST(Json, BoundsNestingDepth) {
  std::string Deep(2000, '[');
  Deep += std::string(2000, ']');
  EXPECT_FALSE(parseJson(Deep).Ok);
  std::string Fine = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_TRUE(parseJson(Fine).Ok);
}

//===----------------------------------------------------------------------===//
// AnalysisResult round-trips
//===----------------------------------------------------------------------===//

TEST(Serialize, KernelResultRoundTripsExactly) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0xbeef);
  for (int I = 0; I < 8; ++I)
    Inputs.push_back({R.betweenOrdinals(1.0, 1e16)});
  AnalysisResult Result = analyzeChunk(P, Inputs, 0, 8);
  AnalysisResult Back = roundTrip(Result, "cancellation");

  // Parsed records keep exact bit-level values, not just report text.
  for (const auto &[PC, Rec] : Result.Ops) {
    ASSERT_TRUE(Back.Ops.count(PC));
    const OpRecord &B = Back.Ops.at(PC);
    EXPECT_EQ(B.Executions, Rec.Executions);
    EXPECT_EQ(B.Flagged, Rec.Flagged);
    EXPECT_EQ(B.NextVarIdx, Rec.NextVarIdx);
    EXPECT_EQ(bitsOfDouble(B.LocalError.sum()),
              bitsOfDouble(Rec.LocalError.sum()));
    EXPECT_EQ(bitsOfDouble(B.MaxFlaggedLocalError),
              bitsOfDouble(Rec.MaxFlaggedLocalError));
    ASSERT_EQ(static_cast<bool>(B.Expr), static_cast<bool>(Rec.Expr));
    if (Rec.Expr)
      EXPECT_EQ(B.Expr->fpcoreBody(), Rec.Expr->fpcoreBody());
    ASSERT_EQ(B.ExampleProblematic.size(), Rec.ExampleProblematic.size());
    for (size_t I = 0; I < Rec.ExampleProblematic.size(); ++I) {
      EXPECT_EQ(B.ExampleProblematic[I].Idx, Rec.ExampleProblematic[I].Idx);
      EXPECT_EQ(bitsOfDouble(B.ExampleProblematic[I].Value),
                bitsOfDouble(Rec.ExampleProblematic[I].Value));
    }
  }
  for (const auto &[PC, Spot] : Result.Spots) {
    ASSERT_TRUE(Back.Spots.count(PC));
    EXPECT_EQ(Back.Spots.at(PC).InfluencingOps, Spot.InfluencingOps);
    EXPECT_EQ(Back.Spots.at(PC).Kind, Spot.Kind);
  }
}

TEST(Serialize, ParsedShardsMergeLikeInMemoryShards) {
  // The acceptance property, benchmark by benchmark over the corpus:
  // rendering each shard to JSON, parsing it back, and folding the parsed
  // values produces the same report bytes as folding the originals.
  int Tested = 0;
  for (size_t BI = 0; BI < fpcore::corpus().size() && Tested < 10; ++BI) {
    const fpcore::Core &C = fpcore::corpus()[BI];
    if (!fpcore::isCompilable(C))
      continue;
    ++Tested;
    Program P = fpcore::compile(C);
    Rng R(0x1234 + BI);
    std::vector<fpcore::VarRange> Ranges = fpcore::sampleRanges(C);
    std::vector<std::vector<double>> Inputs;
    for (int I = 0; I < 9; ++I) {
      std::vector<double> In;
      for (const fpcore::VarRange &VR : Ranges)
        In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
      Inputs.push_back(std::move(In));
    }

    AnalysisResult Direct = analyzeChunk(P, Inputs, 0, 3);
    AnalysisResult S2 = analyzeChunk(P, Inputs, 3, 6);
    AnalysisResult S3 = analyzeChunk(P, Inputs, 6, 9);

    AnalysisResult ViaWire = roundTrip(Direct, C.Name);
    ViaWire.mergeFrom(roundTrip(S2, C.Name));
    ViaWire.mergeFrom(roundTrip(S3, C.Name));

    Direct.mergeFrom(S2);
    Direct.mergeFrom(S3);
    EXPECT_EQ(buildReport(ViaWire).renderJson(),
              buildReport(Direct).renderJson())
        << C.Name;
  }
  EXPECT_GE(Tested, 8);
}

TEST(Serialize, EmptyResultRoundTrips) {
  AnalysisResult Empty;
  Empty.Ranges = RangeMode::Single;
  Empty.EquivDepth = 3;
  AnalysisResult Back = roundTrip(Empty, "empty");
  EXPECT_EQ(Back.Ranges, RangeMode::Single);
  EXPECT_EQ(Back.EquivDepth, 3u);
  EXPECT_TRUE(Back.Ops.empty());
  EXPECT_TRUE(Back.Spots.empty());
}

//===----------------------------------------------------------------------===//
// Shard documents and versioning
//===----------------------------------------------------------------------===//

TEST(Serialize, ShardDocRoundTrips) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs = {{1e15}, {2e15}, {3e15}};
  ShardDoc Doc;
  Doc.ConfigHash = "0123456789abcdef";
  Doc.Benchmark = "bench \"quoted\" name";
  Doc.BenchIndex = 3;
  Doc.ShardIndex = 7;
  Doc.RunBegin = 14;
  Doc.RunEnd = 17;
  Doc.Result = analyzeChunk(P, Inputs, 0, 3);
  std::string Json = renderShardJson(Doc);

  ShardDoc Back;
  std::string Err;
  ASSERT_TRUE(parseShardJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.ConfigHash, Doc.ConfigHash);
  EXPECT_EQ(Back.Benchmark, Doc.Benchmark);
  EXPECT_EQ(Back.BenchIndex, 3u);
  EXPECT_EQ(Back.ShardIndex, 7u);
  EXPECT_EQ(Back.RunBegin, 14u);
  EXPECT_EQ(Back.RunEnd, 17u);
  EXPECT_EQ(renderShardJson(Back), Json);
}

TEST(Serialize, RejectsUnknownMajorVersionAndForeignFormats) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs = {{1e15}};
  std::string Json = renderShardJson("hash", "b", 0, 0, 0, 1,
                                     analyzeChunk(P, Inputs, 0, 1));

  // A future major version must be refused, not misread.
  std::string Bumped = Json;
  std::string Needle = format("\"major\":%d", WireFormatMajor);
  size_t At = Bumped.find(Needle);
  ASSERT_NE(At, std::string::npos);
  Bumped.replace(At, Needle.size(), format("\"major\":%d",
                                           WireFormatMajor + 1));
  ShardDoc Out;
  std::string Err;
  EXPECT_FALSE(parseShardJson(Bumped, Out, Err));
  EXPECT_NE(Err.find("major version"), std::string::npos) << Err;

  // A newer *minor* version of the same major still parses.
  std::string MinorBump = Json;
  Needle = format("\"minor\":%d", WireFormatMinor);
  At = MinorBump.find(Needle);
  ASSERT_NE(At, std::string::npos);
  MinorBump.replace(At, Needle.size(),
                    format("\"minor\":%d", WireFormatMinor + 3));
  ShardDoc Out2;
  EXPECT_TRUE(parseShardJson(MinorBump, Out2, Err)) << Err;

  // Wrong format tag, invalid JSON, wrong shapes.
  ShardDoc Out3;
  EXPECT_FALSE(parseShardJson("{\"format\":\"something-else\","
                              "\"version\":{\"major\":1}}",
                              Out3, Err));
  EXPECT_FALSE(parseShardJson("not json", Out3, Err));
  EXPECT_FALSE(parseShardJson("[]", Out3, Err));

  // Inverted run ranges and negative counters must not wrap through
  // strtoull into huge u64s.
  std::string Inverted = Json;
  Needle = "\"runBegin\":0,\"runEnd\":1";
  At = Inverted.find(Needle);
  ASSERT_NE(At, std::string::npos);
  Inverted.replace(At, Needle.size(), "\"runBegin\":3,\"runEnd\":1");
  ShardDoc Out4;
  EXPECT_FALSE(parseShardJson(Inverted, Out4, Err));
  EXPECT_NE(Err.find("precedes"), std::string::npos) << Err;

  std::string Negative = Json;
  At = Negative.find(Needle);
  ASSERT_NE(At, std::string::npos);
  Negative.replace(At, Needle.size(), "\"runBegin\":0,\"runEnd\":-1");
  ShardDoc Out5;
  EXPECT_FALSE(parseShardJson(Negative, Out5, Err));
}

//===----------------------------------------------------------------------===//
// Presentation reports and batch documents
//===----------------------------------------------------------------------===//

TEST(Serialize, ReportRoundTripsByteIdentically) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs;
  // Above 2^53 the +1 is swallowed entirely, so the output spot is
  // reliably erroneous and the report non-trivial.
  Rng R(0x7777);
  for (int I = 0; I < 6; ++I)
    Inputs.push_back({R.betweenOrdinals(1e16, 1e18)});
  Report Rep = buildReport(analyzeChunk(P, Inputs, 0, 6));
  ASSERT_FALSE(Rep.Spots.empty());

  std::string Json = Rep.renderJson();
  Report Back;
  std::string Err;
  ASSERT_TRUE(parseReportJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.renderJson(), Json);
  // The parsed report also renders the same human-readable text.
  EXPECT_EQ(Back.render(), Rep.render());
}

TEST(Serialize, BatchReportDocumentRoundTrips) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(4);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 6;
  Cfg.ShardSize = 2;
  BatchResult Result = Engine(Cfg).run(Cores);
  std::string Json = Result.renderJson();

  BatchReportDoc Doc;
  std::string Err;
  ASSERT_TRUE(parseBatchReportJson(Json, Doc, Err)) << Err;
  ASSERT_EQ(Doc.Benchmarks.size(), Cores.size());
  for (size_t I = 0; I < Doc.Benchmarks.size(); ++I) {
    EXPECT_EQ(Doc.Benchmarks[I].Name, Result.Benchmarks[I].Name);
    EXPECT_EQ(Doc.Benchmarks[I].Shards, Result.Benchmarks[I].Shards);
    EXPECT_EQ(Doc.Benchmarks[I].Runs, Result.Benchmarks[I].Runs);
    EXPECT_EQ(Doc.Benchmarks[I].Rep.renderJson(),
              Result.Benchmarks[I].Rep.renderJson());
  }

  // The envelope is versioned like shard documents.
  std::string Bumped = Json;
  std::string Needle = format("\"major\":%d", WireFormatMajor);
  Bumped.replace(Bumped.find(Needle), Needle.size(),
                 format("\"major\":%d", WireFormatMajor + 1));
  BatchReportDoc Doc2;
  EXPECT_FALSE(parseBatchReportJson(Bumped, Doc2, Err));
}

TEST(Serialize, ImproveRecordsRoundTripByteIdentically) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0x8888);
  for (int I = 0; I < 6; ++I)
    Inputs.push_back({R.betweenOrdinals(1e16, 1e18)});
  Report Rep = buildReport(analyzeChunk(P, Inputs, 0, 6));
  ASSERT_FALSE(Rep.Spots.empty());

  ImproveRecord IR;
  IR.PC = Rep.Spots[0].RootCauses.empty()
              ? 7u
              : Rep.Spots[0].RootCauses[0].PC;
  IR.Original = "(- (+ x 1) x)";
  IR.Rewritten = "1";
  IR.ErrorBefore = 37.25;
  IR.ErrorAfter = 0.0;
  IR.HadSignificantError = true;
  IR.Improved = true;
  Rep.Improvements.push_back(IR);
  ImproveRecord None;
  None.PC = IR.PC + 1;
  None.Original = "(sqrt \"q\\uote\")"; // exercises string escaping
  None.ErrorBefore = 1.5;
  None.ErrorAfter = 1.5;
  Rep.Improvements.push_back(None);

  std::string Json = Rep.renderJson();
  EXPECT_NE(Json.find("\"improvements\":["), std::string::npos);
  Report Back;
  std::string Err;
  ASSERT_TRUE(parseReportJson(Json, Back, Err)) << Err;
  ASSERT_EQ(Back.Improvements.size(), 2u);
  EXPECT_EQ(Back.Improvements[0].Rewritten, "1");
  EXPECT_TRUE(Back.Improvements[0].Improved);
  EXPECT_FALSE(Back.Improvements[1].Improved);
  EXPECT_EQ(Back.renderJson(), Json);
  EXPECT_EQ(Back.render(), Rep.render());
}

TEST(Serialize, PreImprovementsMinorVersionsAreAccepted) {
  // A 1.0 writer never emitted an "improvements" section; this reader
  // must accept such documents (any minor of a known major) and
  // round-trip the absence to absence.
  std::string Doc = format(
      "{\"format\":\"herbgrind-report\","
      "\"version\":{\"major\":%d,\"minor\":0},"
      "\"benchmarks\":[{\"name\":\"b\",\"shards\":1,\"runs\":2,"
      "\"report\":{\"spots\":[]}}]}",
      WireFormatMajor);
  BatchReportDoc Out;
  std::string Err;
  ASSERT_TRUE(parseBatchReportJson(Doc, Out, Err)) << Err;
  ASSERT_EQ(Out.Benchmarks.size(), 1u);
  EXPECT_TRUE(Out.Benchmarks[0].Rep.Improvements.empty());
  EXPECT_EQ(Out.Benchmarks[0].Rep.renderJson(), "{\"spots\":[]}");
}

TEST(Serialize, ImproveDocRoundTripsAndRejectsForeignEnvelopes) {
  ImproveDoc Doc;
  Doc.ConfigHash = "92d1a30a41a09a3f";
  Doc.ImproveHash = "improve-v1|samples=256";
  Doc.ExprIdentity = "(- (sqrt (+ x 1)) (sqrt x))";
  Doc.SpecIdentity = "[1,1000000000]";
  Doc.Record.Original = Doc.ExprIdentity;
  Doc.Record.Rewritten = "(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))";
  Doc.Record.ErrorBefore = 23.456789;
  Doc.Record.ErrorAfter = 0.25;
  Doc.Record.HadSignificantError = true;
  Doc.Record.Improved = true;

  std::string Json = renderImproveDocJson(Doc);
  ImproveDoc Back;
  std::string Err;
  ASSERT_TRUE(parseImproveDocJson(Json, Back, Err)) << Err;
  EXPECT_EQ(renderImproveDocJson(Back), Json);
  EXPECT_EQ(Back.Record.Rewritten, Doc.Record.Rewritten);
  EXPECT_EQ(Back.Record.ErrorBefore, Doc.Record.ErrorBefore);

  // Wrong format tag and unknown major are both rejected.
  ImproveDoc Out;
  EXPECT_FALSE(parseImproveDocJson(
      renderShardJson("h", "b", 0, 0, 0, 1, AnalysisResult{}), Out, Err));
  std::string Bumped = Json;
  std::string Needle = format("\"major\":%d", WireFormatMajor);
  Bumped.replace(Bumped.find(Needle), Needle.size(),
                 format("\"major\":%d", WireFormatMajor + 1));
  EXPECT_FALSE(parseImproveDocJson(Bumped, Out, Err));
}

//===----------------------------------------------------------------------===//
// Merging emitted shard documents
//===----------------------------------------------------------------------===//

TEST(MergeShards, ReproducesTheDirectSweepByteIdentically) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(5);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 7;
  Cfg.ShardSize = 3;
  std::string Direct = Engine(Cfg).run(Cores).renderJson();

  // Two "machines" run disjoint shard ranges, emitting wire documents.
  TempDir DirA("emitA"), DirB("emitB");
  EngineConfig CfgA = Cfg;
  CfgA.ShardBegin = 0;
  CfgA.ShardEnd = 2;
  CfgA.EmitShardDir = DirA.Path;
  Engine(CfgA).run(Cores);
  EngineConfig CfgB = Cfg;
  CfgB.ShardBegin = 2;
  CfgB.EmitShardDir = DirB.Path;
  Engine(CfgB).run(Cores);

  std::vector<ShardDoc> Docs;
  for (const std::string &Dir : {DirA.Path, DirB.Path})
    for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
      std::string Text, Err;
      ASSERT_TRUE(readFile(Entry.path().string(), Text));
      ShardDoc Doc;
      ASSERT_TRUE(parseShardJson(Text, Doc, Err)) << Err;
      Docs.push_back(std::move(Doc));
    }
  ASSERT_EQ(Docs.size(), 5u * 3u); // ceil(7/3) = 3 shards per benchmark

  BatchResult Merged;
  std::string Err, Warnings;
  ASSERT_TRUE(mergeShards(std::move(Docs), Merged, Err, &Warnings)) << Err;
  EXPECT_TRUE(Warnings.empty()) << Warnings;
  EXPECT_EQ(Merged.renderJson(), Direct);
  EXPECT_EQ(Merged.Stats.Runs, 7u * 5u);
}

TEST(MergeShards, RejectsMixedConfigsAndDuplicates) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs = {{1e15}, {2e15}};
  auto MakeDoc = [&](const char *Hash, uint64_t ShardIdx) {
    ShardDoc D;
    D.ConfigHash = Hash;
    D.Benchmark = "k";
    D.ShardIndex = ShardIdx;
    D.RunBegin = ShardIdx;
    D.RunEnd = ShardIdx + 1;
    D.Result = analyzeChunk(P, Inputs, ShardIdx, ShardIdx + 1);
    return D;
  };

  std::vector<ShardDoc> Mixed;
  Mixed.push_back(MakeDoc("aaaa", 0));
  Mixed.push_back(MakeDoc("bbbb", 1));
  BatchResult Out;
  std::string Err;
  EXPECT_FALSE(mergeShards(std::move(Mixed), Out, Err));
  EXPECT_NE(Err.find("config hash"), std::string::npos) << Err;

  std::vector<ShardDoc> Dup;
  Dup.push_back(MakeDoc("aaaa", 0));
  Dup.push_back(MakeDoc("aaaa", 0));
  BatchResult Out2;
  EXPECT_FALSE(mergeShards(std::move(Dup), Out2, Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;

  std::vector<ShardDoc> Empty;
  BatchResult Out3;
  EXPECT_FALSE(mergeShards(std::move(Empty), Out3, Err));

  // A gap merges (partial results are valid) but is reported.
  std::vector<ShardDoc> Gappy;
  Gappy.push_back(MakeDoc("aaaa", 0));
  ShardDoc Later = MakeDoc("aaaa", 1);
  Later.RunBegin = 5;
  Later.RunEnd = 6;
  Gappy.push_back(std::move(Later));
  BatchResult Out4;
  std::string Warnings;
  EXPECT_TRUE(mergeShards(std::move(Gappy), Out4, Err, &Warnings)) << Err;
  EXPECT_NE(Warnings.find("gap"), std::string::npos) << Warnings;

  // So is a missing *leading* shard (set starts past run 0).
  std::vector<ShardDoc> Headless;
  Headless.push_back(MakeDoc("aaaa", 1));
  BatchResult Out5;
  std::string Warnings2;
  EXPECT_TRUE(mergeShards(std::move(Headless), Out5, Err, &Warnings2))
      << Err;
  EXPECT_NE(Warnings2.find("starts at shard"), std::string::npos)
      << Warnings2;
}

//===----------------------------------------------------------------------===//
// The persistent result cache
//===----------------------------------------------------------------------===//

TEST(ResultCache, WarmSweepAnalyzesNothingAndMatchesByteForByte) {
  TempDir Dir("cache-warm");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(5);
  EngineConfig Cfg;
  Cfg.Jobs = 3;
  Cfg.SamplesPerBenchmark = 7;
  Cfg.ShardSize = 3;
  Cfg.CacheDir = Dir.Path;

  BatchResult Cold = Engine(Cfg).run(Cores);
  EXPECT_EQ(Cold.Stats.AnalyzedShards, Cold.Stats.Shards);
  EXPECT_EQ(Cold.Stats.CachedShards, 0u);

  BatchResult Warm = Engine(Cfg).run(Cores);
  EXPECT_EQ(Warm.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(Warm.Stats.CachedShards, Warm.Stats.Shards);
  EXPECT_EQ(Warm.renderJson(), Cold.renderJson());

  // And the cached sweep matches an uncached engine too.
  EngineConfig Plain = Cfg;
  Plain.CacheDir.clear();
  EXPECT_EQ(Engine(Plain).run(Cores).renderJson(), Cold.renderJson());
}

TEST(ResultCache, InvalidatesOnConfigSeedAndProgramChanges) {
  TempDir Dir("cache-inval");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(2);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;
  Cfg.CacheDir = Dir.Path;
  BatchResult First = Engine(Cfg).run(Cores);
  EXPECT_EQ(First.Stats.CachedShards, 0u);

  // An analysis-config change hashes differently: full re-analysis.
  EngineConfig Changed = Cfg;
  Changed.Analysis.LocalErrorThreshold = 7.5;
  EXPECT_NE(configHash(Changed), configHash(Cfg));
  BatchResult Re = Engine(Changed).run(Cores);
  EXPECT_EQ(Re.Stats.CachedShards, 0u);
  EXPECT_EQ(Re.Stats.AnalyzedShards, Re.Stats.Shards);

  // A seed change likewise.
  EngineConfig Reseeded = Cfg;
  Reseeded.Seed = 0xfeed;
  EXPECT_NE(configHash(Reseeded), configHash(Cfg));
  EXPECT_EQ(Engine(Reseeded).run(Cores).Stats.CachedShards, 0u);

  // Swapping one benchmark for another (different FPCore identity at the
  // same index) misses for the new program, still hits for the old one.
  std::vector<fpcore::Core> Swapped;
  Swapped.push_back(Cores[0].clone());
  Swapped.push_back(smallCorpusSubset(3)[2].clone());
  BatchResult Mixed = Engine(Cfg).run(Swapped);
  EXPECT_EQ(Mixed.Stats.CachedShards, Mixed.Stats.Shards / 2);
  EXPECT_EQ(Mixed.Stats.AnalyzedShards, Mixed.Stats.Shards / 2);

  // The original sweep is still fully warm.
  EXPECT_EQ(Engine(Cfg).run(Cores).Stats.AnalyzedShards, 0u);
}

TEST(ResultCache, CorruptEntriesAreMissesNotErrors) {
  TempDir Dir("cache-corrupt");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(2);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;
  Cfg.CacheDir = Dir.Path;
  std::string Expected = Engine(Cfg).run(Cores).renderJson();

  // Truncate one entry and scribble garbage over another.
  std::vector<std::string> Entries;
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path))
    Entries.push_back(E.path().string());
  ASSERT_GE(Entries.size(), 2u);
  std::sort(Entries.begin(), Entries.end());
  std::ofstream(Entries[0], std::ios::binary | std::ios::trunc)
      << "{\"truncated";
  std::ofstream(Entries[1], std::ios::binary | std::ios::trunc)
      << "not even json";

  BatchResult Re = Engine(Cfg).run(Cores);
  EXPECT_EQ(Re.Stats.AnalyzedShards, 2u); // exactly the two spoiled ones
  EXPECT_EQ(Re.renderJson(), Expected);

  // The re-store healed them.
  EXPECT_EQ(Engine(Cfg).run(Cores).Stats.AnalyzedShards, 0u);
}

TEST(ResultCache, EmitFailuresAreCountedNotSwallowed) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(1);
  EngineConfig Cfg;
  Cfg.Jobs = 1;
  Cfg.SamplesPerBenchmark = 2;
  Cfg.ShardSize = 2;
  // A path that cannot be created as a directory: every write fails.
  TempDir Dir("emit-fail");
  std::string File = Dir.Path + "/not-a-dir";
  std::ofstream(File, std::ios::binary) << "x";
  Cfg.EmitShardDir = File;
  BatchResult R = Engine(Cfg).run(Cores);
  EXPECT_EQ(R.Stats.EmitFailures, R.Stats.Shards);
  EXPECT_GT(R.Stats.EmitFailures, 0u);
}

TEST(ResultCache, ShardRangeSlicesShareTheCache) {
  TempDir Dir("cache-range");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(3);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 2; // 4 shards per benchmark
  Cfg.CacheDir = Dir.Path;

  EngineConfig Half = Cfg;
  Half.ShardEnd = 2;
  BatchResult A = Engine(Half).run(Cores);
  EXPECT_EQ(A.Stats.Shards, 3u * 2u);
  EXPECT_EQ(A.Stats.Runs, 3u * 4u);

  // The full sweep reuses the first half's shards from the cache.
  BatchResult Full = Engine(Cfg).run(Cores);
  EXPECT_EQ(Full.Stats.CachedShards, 3u * 2u);
  EXPECT_EQ(Full.Stats.AnalyzedShards, 3u * 2u);

  // And matches an uncached full sweep byte-for-byte.
  EngineConfig Plain = Cfg;
  Plain.CacheDir.clear();
  EXPECT_EQ(Engine(Plain).run(Cores).renderJson(), Full.renderJson());
}

TEST(ResultCache, GcPrunesLeastRecentlyUsedToTheCap) {
  TempDir Dir("cache-gc");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(3);
  EngineConfig Cfg;
  Cfg.Jobs = 1;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 2;
  Cfg.CacheDir = Dir.Path;
  std::string Reference = Engine(Cfg).run(Cores).renderJson();

  CacheGcStats Before;
  std::string Err;
  ASSERT_TRUE(gcCacheDir(Dir.Path, UINT64_MAX, Before, Err)) << Err;
  ASSERT_GT(Before.Entries, 0u);
  EXPECT_EQ(Before.PrunedEntries, 0u); // unbounded cap prunes nothing

  // Prune to roughly half the current footprint: some entries must go,
  // and the survivors must fit the cap.
  uint64_t Cap = Before.Bytes / 2;
  CacheGcStats Pruned;
  ASSERT_TRUE(gcCacheDir(Dir.Path, Cap, Pruned, Err)) << Err;
  EXPECT_GT(Pruned.PrunedEntries, 0u);
  EXPECT_LT(Pruned.PrunedEntries, Pruned.Entries);
  EXPECT_LE(Pruned.Bytes - Pruned.PrunedBytes, Cap);

  // A pruned cache is just colder: the rerun refills it byte-identically.
  BatchResult Rerun = Engine(Cfg).run(Cores);
  EXPECT_GT(Rerun.Stats.AnalyzedShards, 0u);
  EXPECT_GT(Rerun.Stats.CachedShards, 0u);
  EXPECT_EQ(Rerun.renderJson(), Reference);

  // Cap 0 empties the cache entirely.
  CacheGcStats Emptied;
  ASSERT_TRUE(gcCacheDir(Dir.Path, 0, Emptied, Err)) << Err;
  EXPECT_EQ(Emptied.PrunedEntries, Emptied.Entries);

  // The engine's own post-run GC honors CacheMaxBytes.
  EngineConfig Capped = Cfg;
  Capped.CacheMaxBytes = Cap;
  BatchResult AutoGc = Engine(Capped).run(Cores);
  EXPECT_EQ(AutoGc.renderJson(), Reference);
  EXPECT_GT(AutoGc.Stats.CachePrunedEntries, 0u);
  CacheGcStats After;
  ASSERT_TRUE(gcCacheDir(Dir.Path, UINT64_MAX, After, Err)) << Err;
  EXPECT_LE(After.Bytes, Cap);
}

//===----------------------------------------------------------------------===//
// The telemetry document (versioned independently of the report format)
//===----------------------------------------------------------------------===//

TEST(Serialize, TelemetryDocumentRoundTripsAndKeepsItsOwnVersion) {
  // Telemetry carries its own major/minor so observability can evolve
  // without forcing a report-format bump (which would invalidate every
  // result cache on disk).
  TelemetryDoc Doc;
  metrics::CounterSample C;
  C.Name = "engine.runs";
  C.Value = 776;
  Doc.Metrics.Counters.push_back(C);
  metrics::GaugeSample G;
  G.Name = "pool.workers";
  G.Value = 4;
  G.Max = 4;
  Doc.Metrics.Gauges.push_back(G);
  metrics::TimerSample T;
  T.Name = "engine.run_ns";
  T.Count = 1;
  T.SumNanos = 123456789;
  T.MaxNanos = 123456789;
  T.Buckets[26] = 1;
  Doc.Metrics.Timers.push_back(T);
  opprof::OpProfileRow Row;
  Row.Op = Opcode::SqrtF64;
  Row.Loc = SourceLoc("quad.cpp", 17, "quadratic");
  Row.Executions = 640;
  Row.Samples = 640;
  Row.Nanos = 987654;
  Row.LimbHits = 12;
  Doc.Profile.push_back(Row);
  Doc.ProfileTotalNanos = 1000000;

  std::string Json = renderTelemetryJson(Doc);
  EXPECT_NE(Json.find("\"format\":\"herbgrind-telemetry\""),
            std::string::npos);

  TelemetryDoc Back;
  std::string Err;
  ASSERT_TRUE(parseTelemetryJson(Json, Back, Err)) << Err;
  EXPECT_EQ(renderTelemetryJson(Back), Json);
  ASSERT_EQ(Back.Profile.size(), 1u);
  EXPECT_EQ(Back.Profile[0].Op, Opcode::SqrtF64);
  EXPECT_EQ(Back.Profile[0].Loc.str(), "quad.cpp:17 in quadratic");
  const metrics::TimerSample *TS = Back.Metrics.findTimer("engine.run_ns");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Buckets[26], 1u);

  // Unknown telemetry major: refused, like every other document family.
  std::string Needle = format("\"major\":%d", TelemetryFormatMajor);
  size_t At = Json.find(Needle);
  ASSERT_NE(At, std::string::npos);
  std::string Bumped = Json;
  Bumped.replace(At, Needle.size(),
                 format("\"major\":%d", TelemetryFormatMajor + 2));
  TelemetryDoc Out;
  EXPECT_FALSE(parseTelemetryJson(Bumped, Out, Err));
  EXPECT_NE(Err.find("major version"), std::string::npos) << Err;

  // The report parsers refuse a telemetry document and vice versa: the
  // format tags keep the two families apart even at the same version.
  ShardDoc Foreign;
  EXPECT_FALSE(parseShardJson(Json, Foreign, Err));
  EXPECT_FALSE(parseTelemetryJson(
      "{\"format\":\"herbgrind-shard\",\"version\":{\"major\":1,"
      "\"minor\":0}}",
      Out, Err));
}
