//===- tests/test_engine.cpp - Batch engine & record merging --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The batch engine's contract: (1) merging per-shard records in shard
// order reproduces what one analysis running every round sequentially
// records -- exactly, for programs whose shards disagree only at trace
// leaves; (2) expression merging is associative, and commutative up to
// variable renaming; (3) empty and single-operation shards merge
// correctly; (4) the engine's output is byte-identical at any worker
// count and shard size.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/ThreadPool.h"
#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/FloatBits.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

/// (x + 1) - x: the canonical catastrophic-cancellation kernel.
Program cancellationKernel() {
  ProgramBuilder B;
  auto X = B.input(0);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  B.out(T);
  B.halt();
  return B.finish();
}

/// (a + 1) - b on two inputs.
Program twoInputKernel() {
  ProgramBuilder B;
  auto A = B.input(0);
  auto C = B.input(1);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, A, B.constF64(1.0)), C);
  B.out(T);
  B.halt();
  return B.finish();
}

AnalysisResult analyzeChunk(const Program &P,
                            const std::vector<std::vector<double>> &Inputs,
                            size_t Begin, size_t End) {
  Herbgrind HG(P);
  for (size_t I = Begin; I < End; ++I)
    HG.runOnInput(Inputs[I]);
  return HG.snapshot();
}

/// Variable-order-independent rendering: variables renamed in DFS
/// first-occurrence order.
std::string canonicalBody(const SymExpr *E,
                          std::map<uint32_t, uint32_t> &Renaming) {
  switch (E->Kind) {
  case SymExpr::SEKind::Var: {
    auto It = Renaming.emplace(E->VarIdx,
                               static_cast<uint32_t>(Renaming.size()));
    return format("v%u", It.first->second);
  }
  case SymExpr::SEKind::Const:
    return formatDoubleShortest(E->ConstVal);
  case SymExpr::SEKind::Op: {
    std::string S = "(" + std::to_string(static_cast<unsigned>(E->Op));
    for (const auto &Kid : E->Kids)
      S += " " + canonicalBody(Kid.get(), Renaming);
    return S + ")";
  }
  }
  return "?";
}

std::string canonicalBody(const SymExpr *E) {
  std::map<uint32_t, uint32_t> Renaming;
  return canonicalBody(E, Renaming);
}

void expectSummariesEqual(const VarSummary &A, const VarSummary &B,
                          const std::string &Ctx) {
  EXPECT_EQ(A.Count, B.Count) << Ctx;
  EXPECT_EQ(A.SawNaN, B.SawNaN) << Ctx;
  EXPECT_EQ(A.SawZero, B.SawZero) << Ctx;
  EXPECT_EQ(A.HasRange, B.HasRange) << Ctx;
  if (A.HasRange && B.HasRange) {
    EXPECT_EQ(bitsOfDouble(A.Lo), bitsOfDouble(B.Lo)) << Ctx;
    EXPECT_EQ(bitsOfDouble(A.Hi), bitsOfDouble(B.Hi)) << Ctx;
    EXPECT_EQ(bitsOfDouble(A.Example), bitsOfDouble(B.Example)) << Ctx;
  }
}

/// Strict equality of a merged result against the sequential reference:
/// identical expressions (including variable numbering), counters, input
/// summaries, and rendered reports. Statistic sums may differ in the last
/// ulp because merging adds per-shard subtotals.
void expectMatchesSequential(const AnalysisResult &Merged,
                             const Herbgrind &Seq, const std::string &Ctx) {
  const auto &SeqOps = Seq.opRecords();
  ASSERT_EQ(Merged.Ops.size(), SeqOps.size()) << Ctx;
  for (const auto &[PC, SeqRec] : SeqOps) {
    ASSERT_TRUE(Merged.Ops.count(PC)) << Ctx << " pc " << PC;
    const OpRecord &M = Merged.Ops.at(PC);
    std::string OpCtx = Ctx + " pc " + std::to_string(PC);
    EXPECT_EQ(M.Executions, SeqRec.Executions) << OpCtx;
    EXPECT_EQ(M.Flagged, SeqRec.Flagged) << OpCtx;
    EXPECT_EQ(M.LocalError.count(), SeqRec.LocalError.count()) << OpCtx;
    EXPECT_EQ(M.LocalError.max(), SeqRec.LocalError.max()) << OpCtx;
    EXPECT_NEAR(M.LocalError.mean(), SeqRec.LocalError.mean(),
                1e-9 * (1.0 + std::fabs(SeqRec.LocalError.mean())))
        << OpCtx;
    ASSERT_TRUE(M.Expr && SeqRec.Expr) << OpCtx;
    EXPECT_EQ(M.Expr->fpcoreBody(), SeqRec.Expr->fpcoreBody()) << OpCtx;
    uint32_t NumVars = SeqRec.Expr->numVars();
    for (uint32_t V = 0; V < NumVars; ++V) {
      expectSummariesEqual(M.TotalInputs.var(V), SeqRec.TotalInputs.var(V),
                           OpCtx + " total v" + std::to_string(V));
      expectSummariesEqual(M.ProblematicInputs.var(V),
                           SeqRec.ProblematicInputs.var(V),
                           OpCtx + " prob v" + std::to_string(V));
    }
  }
  ASSERT_EQ(Merged.Spots.size(), Seq.spotRecords().size()) << Ctx;
  for (const auto &[PC, SeqSpot] : Seq.spotRecords()) {
    ASSERT_TRUE(Merged.Spots.count(PC)) << Ctx;
    const SpotRecord &M = Merged.Spots.at(PC);
    EXPECT_EQ(M.Executions, SeqSpot.Executions) << Ctx;
    EXPECT_EQ(M.Erroneous, SeqSpot.Erroneous) << Ctx;
    EXPECT_EQ(M.InfluencingOps, SeqSpot.InfluencingOps) << Ctx;
  }
  EXPECT_EQ(buildReport(Merged).render(), buildReport(Seq).render()) << Ctx;
}

/// Loop- and branch-free cores have one trace shape per site, which is
/// the regime where shard merging is exactly lossless.
bool isStraightLineCore(const fpcore::Expr &E) {
  if (E.K == fpcore::Expr::Kind::While || E.K == fpcore::Expr::Kind::If)
    return false;
  for (const auto &A : E.Args)
    if (!isStraightLineCore(*A))
      return false;
  for (const auto &A : E.Inits)
    if (!isStraightLineCore(*A))
      return false;
  return true;
}

std::vector<std::vector<double>> sampleFor(const fpcore::Core &C, int Count,
                                           uint64_t Seed) {
  Rng R(Seed);
  std::vector<fpcore::VarRange> Ranges = fpcore::sampleRanges(C);
  std::vector<std::vector<double>> Sets;
  for (int I = 0; I < Count; ++I) {
    std::vector<double> In;
    for (const fpcore::VarRange &VR : Ranges)
      In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

} // namespace

//===----------------------------------------------------------------------===//
// Summaries
//===----------------------------------------------------------------------===//

TEST(VarSummary, AddRepeatedMatchesRepeatedAdd) {
  for (double V : {3.25, -7.5, 0.0, std::nan("")}) {
    VarSummary Bulk, Loop;
    Bulk.add(1.0);
    Loop.add(1.0);
    Bulk.addRepeated(V, 5);
    for (int I = 0; I < 5; ++I)
      Loop.add(V);
    EXPECT_EQ(Bulk.Count, Loop.Count);
    EXPECT_EQ(Bulk.SawNaN, Loop.SawNaN);
    EXPECT_EQ(Bulk.SawZero, Loop.SawZero);
    EXPECT_EQ(Bulk.Lo, Loop.Lo);
    EXPECT_EQ(Bulk.Hi, Loop.Hi);
  }
  VarSummary Empty;
  Empty.addRepeated(2.0, 0);
  EXPECT_EQ(Empty.Count, 0u);
}

//===----------------------------------------------------------------------===//
// Shard merging reproduces sequential analysis
//===----------------------------------------------------------------------===//

TEST(RecordMerge, TwoShardsMatchSequential) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0xbeef);
  for (int I = 0; I < 8; ++I)
    Inputs.push_back({R.betweenOrdinals(1.0, 1e16)});

  Herbgrind Seq(P);
  for (const auto &In : Inputs)
    Seq.runOnInput(In);

  AnalysisResult Merged = analyzeChunk(P, Inputs, 0, 4);
  Merged.mergeFrom(analyzeChunk(P, Inputs, 4, 8));
  expectMatchesSequential(Merged, Seq, "cancellation");
}

TEST(RecordMerge, ConstantPromotionOrderMatchesSequential) {
  // Shard A sees a single round (everything constant). In shard B the
  // second input varies from its first round on, while the first input
  // only varies later. Sequential processing therefore numbers the second
  // input's variable before the first's; the merge must reproduce that
  // from the records alone.
  Program P = twoInputKernel();
  std::vector<std::vector<double>> Inputs = {
      {4.0e15, 7.0}, // shard A
      {4.0e15, 9.0}, // shard B: b varies immediately...
      {4.0e15, 11.0},
      {6.0e15, 13.0}, // ...a only on B's third round
  };
  Herbgrind Seq(P);
  for (const auto &In : Inputs)
    Seq.runOnInput(In);

  AnalysisResult Merged = analyzeChunk(P, Inputs, 0, 1);
  Merged.mergeFrom(analyzeChunk(P, Inputs, 1, 4));
  expectMatchesSequential(Merged, Seq, "promotion-order");
}

TEST(RecordMerge, UnevenShardsMatchSequential) {
  Program P = twoInputKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0x5eed);
  for (int I = 0; I < 9; ++I)
    Inputs.push_back({R.betweenOrdinals(1e10, 1e16),
                      R.betweenOrdinals(-100.0, 100.0)});
  Herbgrind Seq(P);
  for (const auto &In : Inputs)
    Seq.runOnInput(In);

  // 1 + 5 + 3 rounds.
  AnalysisResult Merged = analyzeChunk(P, Inputs, 0, 1);
  Merged.mergeFrom(analyzeChunk(P, Inputs, 1, 6));
  Merged.mergeFrom(analyzeChunk(P, Inputs, 6, 9));
  expectMatchesSequential(Merged, Seq, "uneven");
}

TEST(RecordMerge, StraightLineCorpusShardsMatchSequential) {
  int Tested = 0;
  for (size_t BI = 0; BI < fpcore::corpus().size() && Tested < 12; ++BI) {
    const fpcore::Core &C = fpcore::corpus()[BI];
    if (!fpcore::isCompilable(C) || !isStraightLineCore(*C.Body))
      continue;
    ++Tested;
    Program P = fpcore::compile(C);
    auto Inputs = sampleFor(C, 12, 0x1234 + BI);

    Herbgrind Seq(P);
    for (const auto &In : Inputs)
      Seq.runOnInput(In);

    AnalysisResult Merged = analyzeChunk(P, Inputs, 0, 4);
    Merged.mergeFrom(analyzeChunk(P, Inputs, 4, 8));
    Merged.mergeFrom(analyzeChunk(P, Inputs, 8, 12));
    expectMatchesSequential(Merged, Seq, C.Name);
  }
  EXPECT_GE(Tested, 8);
}

//===----------------------------------------------------------------------===//
// Algebraic properties of the merge
//===----------------------------------------------------------------------===//

TEST(RecordMerge, MergeIsAssociative) {
  Program P = twoInputKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0xa550c);
  for (int I = 0; I < 12; ++I)
    Inputs.push_back({R.betweenOrdinals(1e12, 1e16),
                      R.betweenOrdinals(-10.0, 10.0)});

  AnalysisResult S1 = analyzeChunk(P, Inputs, 0, 4);
  AnalysisResult S2 = analyzeChunk(P, Inputs, 4, 8);
  AnalysisResult S3 = analyzeChunk(P, Inputs, 8, 12);

  AnalysisResult Left = S1.clone();
  Left.mergeFrom(S2);
  Left.mergeFrom(S3);

  AnalysisResult RightTail = S2.clone();
  RightTail.mergeFrom(S3);
  AnalysisResult Right = S1.clone();
  Right.mergeFrom(RightTail);

  EXPECT_EQ(buildReport(Left).renderJson(), buildReport(Right).renderJson());
  for (const auto &[PC, Rec] : Left.Ops) {
    ASSERT_TRUE(Right.Ops.count(PC));
    EXPECT_EQ(Rec.Expr->fpcoreBody(), Right.Ops.at(PC).Expr->fpcoreBody());
    EXPECT_EQ(Rec.Executions, Right.Ops.at(PC).Executions);
    EXPECT_EQ(Rec.Flagged, Right.Ops.at(PC).Flagged);
  }
}

TEST(RecordMerge, MergeIsCommutativeUpToRenaming) {
  Program P = twoInputKernel();
  std::vector<std::vector<double>> Inputs;
  Rng R(0xc0ffee);
  for (int I = 0; I < 8; ++I)
    Inputs.push_back({R.betweenOrdinals(1e12, 1e16),
                      R.betweenOrdinals(-10.0, 10.0)});

  AnalysisResult S1 = analyzeChunk(P, Inputs, 0, 4);
  AnalysisResult S2 = analyzeChunk(P, Inputs, 4, 8);

  AnalysisResult AB = S1.clone();
  AB.mergeFrom(S2);
  AnalysisResult BA = S2.clone();
  BA.mergeFrom(S1);

  ASSERT_EQ(AB.Ops.size(), BA.Ops.size());
  for (const auto &[PC, Rec] : AB.Ops) {
    ASSERT_TRUE(BA.Ops.count(PC));
    const OpRecord &Other = BA.Ops.at(PC);
    // Same structure modulo variable names, same aggregates.
    EXPECT_EQ(canonicalBody(Rec.Expr.get()),
              canonicalBody(Other.Expr.get()));
    EXPECT_EQ(Rec.Executions, Other.Executions);
    EXPECT_EQ(Rec.Flagged, Other.Flagged);
    EXPECT_EQ(Rec.LocalError.max(), Other.LocalError.max());
  }
}

//===----------------------------------------------------------------------===//
// Edge cases
//===----------------------------------------------------------------------===//

TEST(RecordMerge, EmptyShardIsIdentity) {
  Program P = cancellationKernel();
  std::vector<std::vector<double>> Inputs = {{1e15}, {2e15}};
  AnalysisResult Full = analyzeChunk(P, Inputs, 0, 2);
  std::string Before = buildReport(Full).renderJson();

  Herbgrind Idle(P); // constructed but never run
  AnalysisResult Empty = Idle.snapshot();
  EXPECT_TRUE(Empty.Ops.empty());
  EXPECT_TRUE(Empty.Spots.empty());

  // empty . full == full
  AnalysisResult Left = Empty.clone();
  Left.mergeFrom(Full);
  EXPECT_EQ(buildReport(Left).renderJson(), Before);

  // full . empty == full
  AnalysisResult Right = Full.clone();
  Right.mergeFrom(Empty);
  EXPECT_EQ(buildReport(Right).renderJson(), Before);
}

TEST(RecordMerge, SingleOpSingleRoundShards) {
  // One operation, one round per shard: the smallest nontrivial merge.
  ProgramBuilder B;
  auto X = B.input(0);
  B.out(B.op(Opcode::AddF64, X, B.constF64(1.0)));
  B.halt();
  Program P = B.finish();

  std::vector<std::vector<double>> Inputs = {{2.0}, {3.0}, {5.0}};
  Herbgrind Seq(P);
  for (const auto &In : Inputs)
    Seq.runOnInput(In);

  AnalysisResult Merged = analyzeChunk(P, Inputs, 0, 1);
  Merged.mergeFrom(analyzeChunk(P, Inputs, 1, 2));
  Merged.mergeFrom(analyzeChunk(P, Inputs, 2, 3));
  expectMatchesSequential(Merged, Seq, "single-op");

  // The lone add's expression generalized its varying leaf.
  bool SawAdd = false;
  for (const auto &[PC, Rec] : Merged.Ops)
    if (Rec.Op == Opcode::AddF64) {
      SawAdd = true;
      EXPECT_EQ(Rec.Executions, 3u);
      EXPECT_EQ(Rec.Expr->numVars(), 1u);
      EXPECT_EQ(Rec.TotalInputs.var(0).Count, 3u);
    }
  EXPECT_TRUE(SawAdd);
}

//===----------------------------------------------------------------------===//
// The thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskAcrossWorkers) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.workers(), 4u);
    for (int I = 0; I < 200; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.waitAll();
    EXPECT_EQ(Count.load(), 200);
    // Reusable after a drain.
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.waitAll();
  }
  EXPECT_EQ(Count.load(), 210);
}

//===----------------------------------------------------------------------===//
// The engine
//===----------------------------------------------------------------------===//

namespace {

/// Replaces every "avgLocalError":<number> with a placeholder (see
/// ShardSizeDoesNotChangeStraightLineReports for why).
std::string stripAverages(const std::string &Json) {
  std::string Out;
  size_t Pos = 0;
  const std::string Key = "\"avgLocalError\":";
  for (;;) {
    size_t Hit = Json.find(Key, Pos);
    if (Hit == std::string::npos) {
      Out += Json.substr(Pos);
      return Out;
    }
    Hit += Key.size();
    Out += Json.substr(Pos, Hit - Pos);
    Out += "<avg>";
    Pos = Json.find_first_of(",}", Hit);
  }
}

std::vector<fpcore::Core> smallCorpusSubset(size_t MaxBenchmarks) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= MaxBenchmarks)
      break;
  }
  return Cores;
}

} // namespace

TEST(Engine, OutputIsIdenticalAtAnyWorkerCount) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(10);
  EngineConfig Cfg;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 3;

  Cfg.Jobs = 1;
  std::string One = Engine(Cfg).run(Cores).renderJson();
  Cfg.Jobs = 4;
  std::string Four = Engine(Cfg).run(Cores).renderJson();
  Cfg.Jobs = 7;
  std::string Seven = Engine(Cfg).run(Cores).renderJson();

  EXPECT_EQ(One, Four);
  EXPECT_EQ(One, Seven);

  // And repeated runs are stable.
  Cfg.Jobs = 4;
  EXPECT_EQ(Four, Engine(Cfg).run(Cores).renderJson());
}

TEST(Engine, ShardSizeDoesNotChangeStraightLineReports) {
  // For loop-free benchmarks shard merging is lossless, so the shard
  // granularity must not be observable either: many small shards produce
  // the same report as one big shard per benchmark.
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C) || !isStraightLineCore(*C.Body))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= 8)
      break;
  }
  ASSERT_GE(Cores.size(), 4u);

  EngineConfig Cfg;
  Cfg.SamplesPerBenchmark = 10;
  Cfg.Jobs = 2;

  Cfg.ShardSize = 2;
  BatchResult Fine = Engine(Cfg).run(Cores);
  Cfg.ShardSize = 10;
  BatchResult Coarse = Engine(Cfg).run(Cores);

  ASSERT_EQ(Fine.Benchmarks.size(), Coarse.Benchmarks.size());
  for (size_t I = 0; I < Fine.Benchmarks.size(); ++I) {
    // Averages are sums of per-round errors; regrouping the rounds may
    // reassociate the addition and move the last ulp, so compare them
    // numerically and everything else byte-for-byte.
    EXPECT_EQ(stripAverages(Fine.Benchmarks[I].Rep.renderJson()),
              stripAverages(Coarse.Benchmarks[I].Rep.renderJson()))
        << Fine.Benchmarks[I].Name;
    const Report &FR = Fine.Benchmarks[I].Rep;
    const Report &CR = Coarse.Benchmarks[I].Rep;
    ASSERT_EQ(FR.Spots.size(), CR.Spots.size());
    for (size_t S = 0; S < FR.Spots.size(); ++S) {
      ASSERT_EQ(FR.Spots[S].RootCauses.size(), CR.Spots[S].RootCauses.size());
      for (size_t C = 0; C < FR.Spots[S].RootCauses.size(); ++C)
        EXPECT_NEAR(FR.Spots[S].RootCauses[C].AvgLocalError,
                    CR.Spots[S].RootCauses[C].AvgLocalError, 1e-9);
    }
    EXPECT_EQ(Fine.Benchmarks[I].Shards, 5u);
    EXPECT_EQ(Coarse.Benchmarks[I].Shards, 1u);
  }
}

TEST(Engine, ProgramCacheCompilesEachBenchmarkOnce) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(6);
  EngineConfig Cfg;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 2; // 4 shards per benchmark
  Cfg.Jobs = 3;
  Engine Eng(Cfg);
  BatchResult R = Eng.run(Cores);
  EXPECT_EQ(R.Stats.CacheMisses, Cores.size());
  EXPECT_EQ(R.Stats.CacheHits, R.Stats.Shards - Cores.size());

  // A second run over the same cores hits the cache for every shard.
  BatchResult R2 = Eng.run(Cores);
  EXPECT_EQ(R2.Stats.CacheMisses, 0u);
  EXPECT_EQ(R2.Stats.CacheHits, R2.Stats.Shards);
}

TEST(Engine, StatsAndStructureAreConsistent) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(5);
  EngineConfig Cfg;
  Cfg.SamplesPerBenchmark = 7;
  Cfg.ShardSize = 3;
  Cfg.Jobs = 2;
  BatchResult R = Engine(Cfg).run(Cores);

  EXPECT_EQ(R.Stats.Benchmarks, Cores.size());
  EXPECT_EQ(R.Benchmarks.size(), Cores.size());
  for (const BenchmarkResult &BR : R.Benchmarks) {
    EXPECT_EQ(BR.Runs, 7u);
    EXPECT_EQ(BR.Shards, 3u); // 3 + 3 + 1
    EXPECT_FALSE(BR.Rep.render().empty());
  }
  EXPECT_EQ(R.Stats.Runs, 7u * Cores.size());
  // The corpus-wide fold renders.
  EXPECT_FALSE(R.merged().render().empty());
  EXPECT_FALSE(R.renderJson().empty());
}

//===----------------------------------------------------------------------===//
// Presentation-level report merging
//===----------------------------------------------------------------------===//

TEST(ReportMerge, CombinesSpotsAndKeepsStrongestCauses) {
  Report A, B;
  SpotReport SA;
  SA.PC = 3;
  SA.Loc = SourceLoc("bench.fpcore", 1, "");
  SA.Executions = 10;
  SA.Erroneous = 2;
  SA.MaxErrorBits = 12.0;
  RootCauseReport RC1;
  RC1.PC = 7;
  RC1.Flagged = 5;
  RC1.FPCore = "(FPCore (x) (- (+ x 1) x))";
  SA.RootCauses.push_back(RC1);
  A.Spots.push_back(SA);

  SpotReport SB = SA;
  SB.Executions = 6;
  SB.Erroneous = 4;
  SB.MaxErrorBits = 20.0;
  SB.RootCauses[0].Flagged = 9; // stronger observation of the same cause
  RootCauseReport RC2;
  RC2.PC = 9;
  RC2.Flagged = 1;
  SB.RootCauses.push_back(RC2);
  B.Spots.push_back(SB);
  SpotReport Other;
  Other.PC = 3; // same pc, different benchmark location: stays separate
  Other.Loc = SourceLoc("other.fpcore", 2, "");
  Other.Executions = 1;
  B.Spots.push_back(Other);

  A.mergeFrom(B);
  ASSERT_EQ(A.Spots.size(), 2u);
  EXPECT_EQ(A.Spots[0].Executions, 16u);
  EXPECT_EQ(A.Spots[0].Erroneous, 6u);
  EXPECT_EQ(A.Spots[0].MaxErrorBits, 20.0);
  ASSERT_EQ(A.Spots[0].RootCauses.size(), 2u);
  EXPECT_EQ(A.Spots[0].RootCauses[0].PC, 7u);
  EXPECT_EQ(A.Spots[0].RootCauses[0].Flagged, 9u);
  EXPECT_EQ(A.Spots[1].Loc.File, "other.fpcore");
}
