//===- tests/test_bigfloat.cpp - BigFloat core arithmetic tests -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The strongest oracle available offline is IEEE-754 itself: hardware double
// +, -, *, /, sqrt are correctly rounded, and BigFloat at >= 128 bits applied
// to double inputs is exact (+,-,*) or correctly rounded with sticky (/,
// sqrt), so converting the BigFloat result back to double must reproduce the
// hardware result bit-for-bit (barring astronomically unlikely double-
// rounding ties for / and sqrt, which the fixed test seeds do not hit).
//
//===----------------------------------------------------------------------===//

#include "real/BigFloat.h"

#include "support/FloatBits.h"
#include "support/LimbAlloc.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>

using namespace herbgrind;

namespace {

/// Random double spread over interesting magnitudes.
double randomDouble(Rng &R) {
  switch (R.nextBelow(4)) {
  case 0:
    return R.uniformReal(-1.0, 1.0);
  case 1:
    return R.betweenOrdinals(-1e30, 1e30);
  case 2:
    return R.anyFiniteDouble();
  default:
    return R.uniformReal(-1e6, 1e6);
  }
}

bool sameDoubleBits(double A, double B) {
  if (std::isnan(A) && std::isnan(B))
    return true;
  return bitsOfDouble(A) == bitsOfDouble(B);
}

class BigFloatPrecisionTest : public ::testing::TestWithParam<size_t> {};

/// Sweeps every limb count from 1 to 8: precisions 64..256 exercise the
/// inline-limb representation, 320..512 the spilled one. Results must be
/// bit-identical across the inline/heap boundary.
class BigFloatLimbSweepTest : public ::testing::TestWithParam<size_t> {};

} // namespace

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

TEST(BigFloat, DoubleRoundTripSpecials) {
  EXPECT_EQ(BigFloat::fromDouble(0.0).toDouble(), 0.0);
  EXPECT_TRUE(std::signbit(BigFloat::fromDouble(-0.0).toDouble()));
  EXPECT_TRUE(std::isnan(BigFloat::fromDouble(std::nan("")).toDouble()));
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(BigFloat::fromDouble(Inf).toDouble(), Inf);
  EXPECT_EQ(BigFloat::fromDouble(-Inf).toDouble(), -Inf);
}

TEST(BigFloat, DoubleRoundTripDirected) {
  for (double X :
       {1.0, -1.0, 0.5, 2.0, 0.1, 1e308, -1e308, 1e-308, 5e-324, -5e-324,
        2.2250738585072014e-308 /* min normal */,
        1.7976931348623157e308 /* max */, 3.141592653589793, 1e16 + 1}) {
    EXPECT_TRUE(sameDoubleBits(BigFloat::fromDouble(X).toDouble(), X)) << X;
  }
}

TEST(BigFloat, DoubleRoundTripRandom) {
  Rng R(101);
  for (int I = 0; I < 20000; ++I) {
    double X = R.anyFiniteDouble();
    EXPECT_TRUE(sameDoubleBits(BigFloat::fromDouble(X).toDouble(), X)) << X;
  }
}

TEST(BigFloat, SubnormalDoubleRoundTrip) {
  Rng R(102);
  for (int I = 0; I < 5000; ++I) {
    // Random subnormals: bit patterns with a zero exponent field.
    uint64_t Bits = R.next() & ((1ULL << 52) - 1);
    if (R.chance(1, 2))
      Bits |= 1ULL << 63;
    double X = doubleFromBits(Bits);
    EXPECT_TRUE(sameDoubleBits(BigFloat::fromDouble(X).toDouble(), X)) << X;
  }
}

TEST(BigFloat, FloatRoundTripRandom) {
  Rng R(103);
  for (int I = 0; I < 20000; ++I) {
    float X = floatFromBits(static_cast<uint32_t>(R.next()));
    if (std::isnan(X))
      continue;
    EXPECT_EQ(bitsOfFloat(BigFloat::fromFloat(X).toFloat()), bitsOfFloat(X))
        << X;
  }
}

TEST(BigFloat, DoubleToFloatMatchesHardwareNarrowing) {
  Rng R(104);
  for (int I = 0; I < 20000; ++I) {
    double X = randomDouble(R);
    float Narrowed = static_cast<float>(X);
    float Ours = BigFloat::fromDouble(X).toFloat();
    EXPECT_EQ(bitsOfFloat(Ours), bitsOfFloat(Narrowed)) << X;
  }
}

TEST(BigFloat, FromInt64) {
  EXPECT_EQ(BigFloat::fromInt64(0).toDouble(), 0.0);
  EXPECT_EQ(BigFloat::fromInt64(1).toDouble(), 1.0);
  EXPECT_EQ(BigFloat::fromInt64(-7).toDouble(), -7.0);
  EXPECT_EQ(BigFloat::fromInt64(INT64_MIN).toDouble(), -9223372036854775808.0);
  EXPECT_EQ(BigFloat::fromInt64(INT64_MAX).toDouble(),
            static_cast<double>(INT64_MAX));
}

TEST(BigFloat, ToInt64Trunc) {
  EXPECT_EQ(BigFloat::fromDouble(3.9).toInt64Trunc(), 3);
  EXPECT_EQ(BigFloat::fromDouble(-3.9).toInt64Trunc(), -3);
  EXPECT_EQ(BigFloat::fromDouble(0.99).toInt64Trunc(), 0);
  EXPECT_EQ(BigFloat::fromDouble(-0.0).toInt64Trunc(), 0);
  EXPECT_EQ(BigFloat::nan().toInt64Trunc(), 0);
  EXPECT_EQ(BigFloat::inf(false).toInt64Trunc(), INT64_MAX);
  EXPECT_EQ(BigFloat::inf(true).toInt64Trunc(), INT64_MIN);
  EXPECT_EQ(BigFloat::fromDouble(1e30).toInt64Trunc(), INT64_MAX);
  EXPECT_EQ(BigFloat::fromDouble(-1e30).toInt64Trunc(), INT64_MIN);
  EXPECT_EQ(BigFloat::fromDouble(-9223372036854775808.0).toInt64Trunc(),
            INT64_MIN);
  Rng R(105);
  for (int I = 0; I < 10000; ++I) {
    double X = R.uniformReal(-1e15, 1e15);
    EXPECT_EQ(BigFloat::fromDouble(X).toInt64Trunc(),
              static_cast<int64_t>(X))
        << X;
  }
}

//===----------------------------------------------------------------------===//
// IEEE agreement for the core operations
//===----------------------------------------------------------------------===//

INSTANTIATE_TEST_SUITE_P(Precisions, BigFloatPrecisionTest,
                         ::testing::Values(128, 256, 512, 1024));

TEST_P(BigFloatPrecisionTest, AddMatchesIEEE) {
  size_t Prec = GetParam();
  Rng R(201);
  for (int I = 0; I < 5000; ++I) {
    double A = randomDouble(R);
    double B = randomDouble(R);
    BigFloat Sum = BigFloat::add(BigFloat::fromDouble(A, Prec),
                                 BigFloat::fromDouble(B, Prec));
    EXPECT_TRUE(sameDoubleBits(Sum.toDouble(), A + B))
        << A << " + " << B << " prec " << Prec;
  }
}

TEST_P(BigFloatPrecisionTest, SubMatchesIEEE) {
  size_t Prec = GetParam();
  Rng R(202);
  for (int I = 0; I < 5000; ++I) {
    double A = randomDouble(R);
    double B = randomDouble(R);
    BigFloat D = BigFloat::sub(BigFloat::fromDouble(A, Prec),
                               BigFloat::fromDouble(B, Prec));
    EXPECT_TRUE(sameDoubleBits(D.toDouble(), A - B))
        << A << " - " << B << " prec " << Prec;
  }
}

TEST_P(BigFloatPrecisionTest, MulMatchesIEEE) {
  size_t Prec = GetParam();
  Rng R(203);
  for (int I = 0; I < 5000; ++I) {
    double A = randomDouble(R);
    double B = randomDouble(R);
    double Expected = A * B;
    if (std::isinf(Expected) && !std::isinf(A) && !std::isinf(B))
      continue; // BigFloat has unbounded exponent range; overflow differs
    if (Expected == 0.0 && A != 0.0 && B != 0.0)
      continue; // likewise underflow-to-zero... except toDouble rounds it
    BigFloat P = BigFloat::mul(BigFloat::fromDouble(A, Prec),
                               BigFloat::fromDouble(B, Prec));
    EXPECT_TRUE(sameDoubleBits(P.toDouble(), Expected))
        << A << " * " << B << " prec " << Prec;
  }
}

TEST_P(BigFloatPrecisionTest, MulHandlesOverflowToInfViaRounding) {
  size_t Prec = GetParam();
  BigFloat P = BigFloat::mul(BigFloat::fromDouble(1e308, Prec),
                             BigFloat::fromDouble(10.0, Prec));
  EXPECT_EQ(P.toDouble(), std::numeric_limits<double>::infinity());
}

TEST_P(BigFloatPrecisionTest, DivMatchesIEEE) {
  size_t Prec = GetParam();
  Rng R(204);
  for (int I = 0; I < 5000; ++I) {
    double A = randomDouble(R);
    double B = randomDouble(R);
    if (B == 0.0)
      continue;
    double Expected = A / B;
    if (std::isinf(Expected) && !std::isinf(A))
      continue;
    if (Expected == 0.0 && A != 0.0 && !std::isinf(B))
      continue;
    BigFloat Q = BigFloat::div(BigFloat::fromDouble(A, Prec),
                               BigFloat::fromDouble(B, Prec));
    EXPECT_TRUE(sameDoubleBits(Q.toDouble(), Expected))
        << A << " / " << B << " prec " << Prec;
  }
}

TEST_P(BigFloatPrecisionTest, SqrtMatchesIEEE) {
  size_t Prec = GetParam();
  Rng R(205);
  for (int I = 0; I < 2000; ++I) {
    double A = std::fabs(randomDouble(R));
    BigFloat S = BigFloat::sqrt(BigFloat::fromDouble(A, Prec));
    EXPECT_TRUE(sameDoubleBits(S.toDouble(), std::sqrt(A)))
        << A << " prec " << Prec;
  }
}

TEST(BigFloat, FmaMatchesHardware) {
  Rng R(206);
  for (int I = 0; I < 5000; ++I) {
    double A = R.uniformReal(-1e10, 1e10);
    double B = R.uniformReal(-1e10, 1e10);
    double C = R.uniformReal(-1e10, 1e10);
    BigFloat F = BigFloat::fma(BigFloat::fromDouble(A), BigFloat::fromDouble(B),
                               BigFloat::fromDouble(C));
    EXPECT_TRUE(sameDoubleBits(F.toDouble(), std::fma(A, B, C)))
        << A << " " << B << " " << C;
  }
}

//===----------------------------------------------------------------------===//
// The inline <-> heap limb boundary (1 to 8 limbs)
//===----------------------------------------------------------------------===//

INSTANTIATE_TEST_SUITE_P(LimbCounts, BigFloatLimbSweepTest,
                         ::testing::Values(64, 128, 192, 256, 320, 384, 448,
                                           512));

TEST_P(BigFloatLimbSweepTest, ArithmeticMatchesWideReference) {
  // Oracle: with moderate exponent gaps, 1024-bit add/sub/mul of doubles is
  // exact, so rounding the exact value once to P bits must reproduce the
  // P-bit operation (which is correctly rounded by contract) for every limb
  // count, inline or spilled.
  size_t Prec = GetParam();
  Rng R(601);
  for (int I = 0; I < 2000; ++I) {
    double A = R.uniformReal(-1e12, 1e12);
    double B = R.uniformReal(-1e12, 1e12);
    BigFloat PA = BigFloat::fromDouble(A, Prec);
    BigFloat PB = BigFloat::fromDouble(B, Prec);
    BigFloat WA = BigFloat::fromDouble(A, 1024);
    BigFloat WB = BigFloat::fromDouble(B, 1024);
    EXPECT_EQ(BigFloat::cmp(BigFloat::add(PA, PB),
                            BigFloat::add(WA, WB).withPrecision(Prec)),
              0)
        << A << " + " << B << " prec " << Prec;
    EXPECT_EQ(BigFloat::cmp(BigFloat::sub(PA, PB),
                            BigFloat::sub(WA, WB).withPrecision(Prec)),
              0)
        << A << " - " << B << " prec " << Prec;
    EXPECT_EQ(BigFloat::cmp(BigFloat::mul(PA, PB),
                            BigFloat::mul(WA, WB).withPrecision(Prec)),
              0)
        << A << " * " << B << " prec " << Prec;
  }
}

TEST_P(BigFloatLimbSweepTest, AliasedDestinationPassing) {
  // The Into forms are alias-safe: Dst aliasing one or both operands must
  // give the exact value-returning result, at every limb count.
  size_t Prec = GetParam();
  Rng R(602);
  for (int I = 0; I < 1000; ++I) {
    double XD = R.uniformReal(-1e6, 1e6);
    double YD = R.uniformReal(-1e6, 1e6);
    BigFloat X = BigFloat::fromDouble(XD, Prec);
    BigFloat Y = BigFloat::fromDouble(YD, Prec);

    BigFloat A = X;
    BigFloat::addInto(A, A, A); // Dst == both operands
    EXPECT_EQ(BigFloat::cmp(A, BigFloat::add(X, X)), 0) << XD;

    BigFloat M = X;
    BigFloat::mulInto(M, M, M);
    EXPECT_EQ(BigFloat::cmp(M, BigFloat::mul(X, X)), 0) << XD;

    BigFloat S = X;
    BigFloat::subInto(S, S, Y); // Dst == first operand
    EXPECT_EQ(BigFloat::cmp(S, BigFloat::sub(X, Y)), 0) << XD << " " << YD;

    BigFloat S2 = Y;
    BigFloat::subInto(S2, X, S2); // Dst == second operand
    EXPECT_EQ(BigFloat::cmp(S2, BigFloat::sub(X, Y)), 0) << XD << " " << YD;

    if (!Y.isZero()) {
      BigFloat D = X;
      BigFloat::divInto(D, D, Y);
      EXPECT_EQ(BigFloat::cmp(D, BigFloat::div(X, Y)), 0) << XD << " " << YD;

      BigFloat D2 = X;
      BigFloat::divInto(D2, D2, D2); // x/x == 1 exactly
      EXPECT_EQ(BigFloat::cmp(D2, BigFloat::fromInt64(1, Prec)), 0) << XD;
    }

    BigFloat Q = X.abs();
    BigFloat::sqrtInto(Q, Q);
    EXPECT_EQ(BigFloat::cmp(Q, BigFloat::sqrt(X.abs())), 0) << XD;
  }
}

TEST_P(BigFloatLimbSweepTest, AliasedSpecialValues) {
  size_t Prec = GetParam();
  BigFloat Inf = BigFloat::inf(false);
  BigFloat::subInto(Inf, Inf, Inf); // inf - inf aliased -> NaN
  EXPECT_TRUE(Inf.isNaN());

  BigFloat Z = BigFloat::zero(false);
  BigFloat::divInto(Z, Z, Z); // 0/0 aliased -> NaN
  EXPECT_TRUE(Z.isNaN());

  BigFloat X = BigFloat::fromDouble(3.5, Prec);
  BigFloat::subInto(X, X, X); // x - x aliased -> +0
  EXPECT_TRUE(X.isZero());
  EXPECT_FALSE(X.isNegative());
}

TEST(BigFloat, CopyAndMoveAcrossInlineHeapBoundary) {
  // 256 bits (4 limbs) is the inline representation, 512 bits (8 limbs)
  // spills. Copies and moves in all four direction combinations must
  // preserve the exact value.
  BigFloat Inline =
      BigFloat::div(BigFloat::fromInt64(1, 256), BigFloat::fromInt64(3, 256));
  BigFloat Spilled =
      BigFloat::div(BigFloat::fromInt64(1, 512), BigFloat::fromInt64(3, 512));
  EXPECT_EQ(Inline.precisionBits(), 256u);
  EXPECT_EQ(Spilled.precisionBits(), 512u);

  // Copy construct both ways.
  BigFloat CopyOfInline = Inline;
  BigFloat CopyOfSpilled = Spilled;
  EXPECT_EQ(BigFloat::cmp(CopyOfInline, Inline), 0);
  EXPECT_EQ(BigFloat::cmp(CopyOfSpilled, Spilled), 0);
  EXPECT_EQ(CopyOfSpilled.debugStr(), Spilled.debugStr());

  // Cross-assign: an inline-valued object receives a spilled value and
  // vice versa (exercises storage adoption in both directions).
  BigFloat A = Inline;
  A = Spilled;
  EXPECT_EQ(BigFloat::cmp(A, Spilled), 0);
  EXPECT_EQ(A.precisionBits(), 512u);
  BigFloat B = Spilled;
  B = Inline;
  EXPECT_EQ(BigFloat::cmp(B, Inline), 0);
  EXPECT_EQ(B.precisionBits(), 256u);

  // Moves preserve the value; the source is only required to be valid for
  // destruction/reassignment afterwards.
  BigFloat MovedSpill = std::move(A);
  EXPECT_EQ(BigFloat::cmp(MovedSpill, Spilled), 0);
  A = MovedSpill; // reassign the moved-from object
  EXPECT_EQ(BigFloat::cmp(A, Spilled), 0);
  BigFloat MovedInline = std::move(B);
  EXPECT_EQ(BigFloat::cmp(MovedInline, Inline), 0);

  // Round-tripping a spilled value through withPrecision back to an inline
  // width crosses the boundary in arithmetic form too.
  BigFloat Narrowed = Spilled.withPrecision(256);
  EXPECT_EQ(BigFloat::cmp(Narrowed, Inline), 0);
  BigFloat Widened = Inline.withPrecision(512);
  EXPECT_EQ(Widened.precisionBits(), 512u);
  EXPECT_EQ(BigFloat::cmp(Widened.withPrecision(256), Inline), 0);
}

TEST(BigFloat, SteadyStateArithmeticIsAllocationFree) {
  // At the default 256-bit precision every value is inline and every
  // scratch buffer is stack-resident: after a warm-up round, add/sub/mul/
  // div/sqrt must perform zero heap allocations.
  Rng R(603);
  auto Round = [&] {
    BigFloat Acc = BigFloat::fromDouble(1.0, 256);
    BigFloat T;
    for (int I = 0; I < 200; ++I) {
      BigFloat X = BigFloat::fromDouble(R.uniformReal(0.5, 2.0), 256);
      BigFloat::mulInto(T, Acc, X);
      BigFloat::addInto(Acc, T, X);
      BigFloat::divInto(Acc, Acc, X);
      BigFloat::sqrtInto(T, Acc.abs());
      BigFloat::subInto(Acc, Acc, T);
      BigFloat::addInto(Acc, Acc, BigFloat::fromDouble(1.5, 256));
    }
    return Acc;
  };
  Round(); // warm-up: may touch the limb cache cold paths
  limballoc::resetCounters();
  Round();
  EXPECT_EQ(limballoc::heapAllocs(), 0u)
      << "steady-state 256-bit arithmetic reached the heap";
}

//===----------------------------------------------------------------------===//
// Exactness and identities at high precision
//===----------------------------------------------------------------------===//

TEST(BigFloat, AdditionIsExactAtSufficientPrecision) {
  // (a + b) - a == b exactly when the working precision covers both.
  Rng R(301);
  for (int I = 0; I < 2000; ++I) {
    double A = R.uniformReal(-1e20, 1e20);
    double B = R.uniformReal(-1.0, 1.0);
    BigFloat BA = BigFloat::fromDouble(A, 256);
    BigFloat BB = BigFloat::fromDouble(B, 256);
    BigFloat Sum = BigFloat::add(BA, BB);
    BigFloat Back = BigFloat::sub(Sum, BA);
    EXPECT_EQ(BigFloat::cmp(Back, BB), 0) << A << " " << B;
  }
}

TEST(BigFloat, MulDivRoundTripOnFullMantissas) {
  // Build full-mantissa values by multiplying doubles, then check that
  // division is consistent with multiplication to within one ulp at the
  // working precision.
  Rng R(302);
  for (int I = 0; I < 500; ++I) {
    BigFloat A = BigFloat::fromDouble(R.uniformReal(0.5, 2.0), 256);
    BigFloat B = BigFloat::fromDouble(R.uniformReal(0.5, 2.0), 256);
    for (int J = 0; J < 3; ++J) {
      A = BigFloat::mul(A, BigFloat::fromDouble(R.uniformReal(0.5, 2.0), 256));
      B = BigFloat::mul(B, BigFloat::fromDouble(R.uniformReal(0.5, 2.0), 256));
    }
    BigFloat Q = BigFloat::div(A, B);
    BigFloat Back = BigFloat::mul(Q, B);
    // |Back - A| / |A| <= 2^-250 or so.
    BigFloat Diff = BigFloat::sub(Back, A).abs();
    if (!Diff.isZero()) {
      EXPECT_LT(Diff.exponent(), A.exponent() - 250)
          << A.debugStr() << " / " << B.debugStr();
    }
  }
}

TEST(BigFloat, SqrtOfExactSquareIsExact) {
  Rng R(303);
  for (int I = 0; I < 500; ++I) {
    BigFloat A = BigFloat::fromDouble(R.uniformReal(0.1, 100.0), 256);
    BigFloat Sq = BigFloat::mul(A, A);
    // A^2 at 256 bits is exact for 53-bit A, so sqrt must return A exactly.
    EXPECT_EQ(BigFloat::cmp(BigFloat::sqrt(Sq), A), 0);
  }
}

TEST(BigFloat, MulExactKeepsAllBits) {
  Rng R(304);
  for (int I = 0; I < 2000; ++I) {
    double A = R.uniformReal(-1e5, 1e5);
    double B = R.uniformReal(-1e5, 1e5);
    BigFloat P =
        BigFloat::mulExact(BigFloat::fromDouble(A, 64), BigFloat::fromDouble(B, 64));
    // The exact product of two doubles fits in 106 bits, so even rounding
    // back to double and comparing with fma detects any lost bits.
    EXPECT_TRUE(sameDoubleBits(P.toDouble(), A * B));
  }
}

//===----------------------------------------------------------------------===//
// Special values
//===----------------------------------------------------------------------===//

TEST(BigFloat, SpecialValueArithmetic) {
  BigFloat PInf = BigFloat::inf(false);
  BigFloat NInf = BigFloat::inf(true);
  BigFloat NaN = BigFloat::nan();
  BigFloat One = BigFloat::fromInt64(1);
  BigFloat Zero = BigFloat::zero(false);

  EXPECT_TRUE(BigFloat::add(PInf, NInf).isNaN());
  EXPECT_TRUE(BigFloat::add(PInf, One).isInf());
  EXPECT_TRUE(BigFloat::add(NaN, One).isNaN());
  EXPECT_TRUE(BigFloat::mul(Zero, PInf).isNaN());
  EXPECT_TRUE(BigFloat::mul(NInf, One.negated()).isInf());
  EXPECT_FALSE(BigFloat::mul(NInf, One.negated()).isNegative());
  EXPECT_TRUE(BigFloat::div(One, Zero).isInf());
  EXPECT_TRUE(BigFloat::div(Zero, Zero).isNaN());
  EXPECT_TRUE(BigFloat::div(PInf, PInf).isNaN());
  EXPECT_TRUE(BigFloat::div(One, PInf).isZero());
  EXPECT_TRUE(BigFloat::sqrt(One.negated()).isNaN());
  EXPECT_TRUE(BigFloat::sqrt(NInf).isNaN());
  EXPECT_TRUE(BigFloat::sqrt(PInf).isInf());
}

TEST(BigFloat, SignedZeroSemantics) {
  BigFloat PZ = BigFloat::zero(false);
  BigFloat NZ = BigFloat::zero(true);
  EXPECT_FALSE(BigFloat::add(PZ, NZ).isNegative());
  EXPECT_TRUE(BigFloat::add(NZ, NZ).isNegative());
  EXPECT_TRUE(BigFloat::mul(NZ, BigFloat::fromInt64(3)).isNegative());
  // x - x == +0 under round-to-nearest.
  BigFloat X = BigFloat::fromDouble(1.5);
  BigFloat D = BigFloat::sub(X, X);
  EXPECT_TRUE(D.isZero());
  EXPECT_FALSE(D.isNegative());
}

//===----------------------------------------------------------------------===//
// Comparison
//===----------------------------------------------------------------------===//

TEST(BigFloat, ComparisonMatchesDoubles) {
  Rng R(401);
  for (int I = 0; I < 10000; ++I) {
    double A = randomDouble(R);
    double B = randomDouble(R);
    BigFloat BA = BigFloat::fromDouble(A);
    BigFloat BB = BigFloat::fromDouble(B);
    EXPECT_EQ(BigFloat::lt(BA, BB), A < B) << A << " " << B;
    EXPECT_EQ(BigFloat::le(BA, BB), A <= B) << A << " " << B;
    EXPECT_EQ(BigFloat::eq(BA, BB), A == B) << A << " " << B;
  }
}

TEST(BigFloat, ComparisonWithNaN) {
  BigFloat NaN = BigFloat::nan();
  BigFloat One = BigFloat::fromInt64(1);
  EXPECT_FALSE(BigFloat::lt(NaN, One));
  EXPECT_FALSE(BigFloat::le(NaN, One));
  EXPECT_FALSE(BigFloat::gt(NaN, One));
  EXPECT_FALSE(BigFloat::eq(NaN, NaN));
  EXPECT_TRUE(BigFloat::ne(NaN, NaN));
}

TEST(BigFloat, ComparisonAcrossPrecisions) {
  BigFloat A = BigFloat::fromDouble(1.5, 128);
  BigFloat B = BigFloat::fromDouble(1.5, 512);
  EXPECT_EQ(BigFloat::cmp(A, B), 0);
  BigFloat C = BigFloat::fromDouble(nextDouble(1.5), 512);
  EXPECT_LT(BigFloat::cmp(A, C), 0);
}

//===----------------------------------------------------------------------===//
// Integer roundings
//===----------------------------------------------------------------------===//

TEST(BigFloat, FloorCeilTruncRoundMatchLibm) {
  Rng R(501);
  for (int I = 0; I < 10000; ++I) {
    double X = R.uniformReal(-100.0, 100.0);
    if (R.chance(1, 10))
      X = std::round(X); // hit exact integers too
    BigFloat B = BigFloat::fromDouble(X);
    EXPECT_EQ(B.floor().toDouble(), std::floor(X)) << X;
    EXPECT_EQ(B.ceil().toDouble(), std::ceil(X)) << X;
    EXPECT_EQ(B.trunc().toDouble(), std::trunc(X)) << X;
    EXPECT_EQ(B.roundNearest().toDouble(), std::round(X)) << X;
  }
}

TEST(BigFloat, RoundNearestEvenTies) {
  EXPECT_EQ(BigFloat::fromDouble(0.5).roundNearestEven().toDouble(), 0.0);
  EXPECT_EQ(BigFloat::fromDouble(1.5).roundNearestEven().toDouble(), 2.0);
  EXPECT_EQ(BigFloat::fromDouble(2.5).roundNearestEven().toDouble(), 2.0);
  EXPECT_EQ(BigFloat::fromDouble(-1.5).roundNearestEven().toDouble(), -2.0);
  EXPECT_EQ(BigFloat::fromDouble(-2.5).roundNearestEven().toDouble(), -2.0);
}

TEST(BigFloat, IsIntegerAndOddness) {
  EXPECT_TRUE(BigFloat::fromDouble(4.0).isInteger());
  EXPECT_TRUE(BigFloat::fromDouble(-3.0).isOddInteger());
  EXPECT_FALSE(BigFloat::fromDouble(4.0).isOddInteger());
  EXPECT_FALSE(BigFloat::fromDouble(4.5).isInteger());
  EXPECT_TRUE(BigFloat::zero().isInteger());
  EXPECT_FALSE(BigFloat::fromDouble(1e300).isOddInteger()); // huge => even
  EXPECT_TRUE(BigFloat::fromDouble(1e300).isInteger());
}

//===----------------------------------------------------------------------===//
// Misc
//===----------------------------------------------------------------------===//

TEST(BigFloat, ScalbIsExact) {
  BigFloat X = BigFloat::fromDouble(1.25);
  EXPECT_EQ(BigFloat::scalb(X, 10).toDouble(), 1280.0);
  EXPECT_EQ(BigFloat::scalb(X, -2).toDouble(), 0.3125);
}

TEST(BigFloat, MinMax) {
  BigFloat A = BigFloat::fromDouble(1.0);
  BigFloat B = BigFloat::fromDouble(2.0);
  EXPECT_EQ(BigFloat::fmin(A, B).toDouble(), 1.0);
  EXPECT_EQ(BigFloat::fmax(A, B).toDouble(), 2.0);
  EXPECT_EQ(BigFloat::fmin(BigFloat::nan(), B).toDouble(), 2.0);
  EXPECT_EQ(BigFloat::fmax(A, BigFloat::nan()).toDouble(), 1.0);
}

TEST(BigFloat, WithPrecisionRounds) {
  // 1 + 2^-100 at 256 bits, rounded to 64 bits, collapses to 1.
  BigFloat Small = BigFloat::scalb(BigFloat::fromInt64(1, 256), -100);
  BigFloat X = BigFloat::add(BigFloat::fromInt64(1, 256), Small);
  EXPECT_NE(BigFloat::cmp(X, BigFloat::fromInt64(1, 256)), 0);
  BigFloat Narrow = X.withPrecision(64);
  EXPECT_EQ(BigFloat::cmp(Narrow, BigFloat::fromInt64(1)), 0);
}

TEST(BigFloat, ExponentAccessor) {
  EXPECT_EQ(BigFloat::fromDouble(1.0).exponent(), 1);
  EXPECT_EQ(BigFloat::fromDouble(0.5).exponent(), 0);
  EXPECT_EQ(BigFloat::fromDouble(4.0).exponent(), 3);
  EXPECT_EQ(BigFloat::fromDouble(0.75).exponent(), 0);
}

TEST(BigFloat, DefaultPrecisionControl) {
  size_t Old = BigFloat::defaultPrecisionBits();
  BigFloat::setDefaultPrecisionBits(512);
  EXPECT_EQ(BigFloat::fromDouble(1.0).precisionBits(), 512u);
  BigFloat::setDefaultPrecisionBits(Old);
}
