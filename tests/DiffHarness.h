//===- tests/DiffHarness.h - Random programs for tiered diffing -*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random benchmark generation for the tiered-shadowing
/// differential tests: random FPCore cores and random native kernels
/// whose entire shape derives from a seed, so any failing comparison
/// reproduces from the seed alone. The generated programs deliberately
/// mix benign arithmetic with cancellation-, pole-, and domain-edge-prone
/// shapes, since the byte-identity contract is only interesting when some
/// benchmarks are erroneous and some are clean.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_TESTS_DIFFHARNESS_H
#define HERBGRIND_TESTS_DIFFHARNESS_H

#include "engine/Engine.h"
#include "fpcore/Compile.h"
#include "fpcore/FPCore.h"
#include "native/Context.h"
#include "native/Kernel.h"
#include "native/Real.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <cassert>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace herbgrind {
namespace diffharness {

//===----------------------------------------------------------------------===//
// Random FPCore cores
//===----------------------------------------------------------------------===//

/// A random expression over variables v0..vNumVars-1 in FPCore syntax.
/// Leaves favor variables so most draws actually exercise the inputs;
/// binary subtraction and division are weighted up because they are where
/// cancellation and poles (the things tier 0 must not miss) come from.
inline std::string randomFPCoreExpr(Rng &R, unsigned NumVars,
                                    unsigned Depth) {
  if (Depth == 0 || R.chance(1, 5)) {
    if (R.chance(3, 4))
      return format("v%llu",
                    static_cast<unsigned long long>(R.nextBelow(NumVars)));
    return formatDoubleShortest(R.uniformReal(-8.0, 8.0));
  }
  static const char *const Binary[] = {"+", "-", "-", "*", "/"};
  static const char *const Unary[] = {"sqrt", "sin", "cos", "exp",
                                      "log",  "fabs", "cbrt", "atan"};
  if (R.chance(2, 3)) {
    const char *Op = Binary[R.nextBelow(sizeof(Binary) / sizeof(*Binary))];
    std::string A = randomFPCoreExpr(R, NumVars, Depth - 1);
    std::string B = randomFPCoreExpr(R, NumVars, Depth - 1);
    return format("(%s %s %s)", Op, A.c_str(), B.c_str());
  }
  const char *Op = Unary[R.nextBelow(sizeof(Unary) / sizeof(*Unary))];
  return format("(%s %s)", Op,
                randomFPCoreExpr(R, NumVars, Depth - 1).c_str());
}

/// One random compilable core. The salt loop regenerates on the (rare)
/// draw the compiler rejects, so callers always get a benchmark back.
inline fpcore::Core randomCore(uint64_t Seed, unsigned Index) {
  for (uint64_t Salt = 0;; ++Salt) {
    Rng R(Seed ^ (0x9e3779b97f4a7c15ULL * (Index + 1)) ^ (Salt << 32));
    unsigned NumVars = 1 + static_cast<unsigned>(R.nextBelow(3));
    unsigned Depth = 2 + static_cast<unsigned>(R.nextBelow(3));
    std::string Params, Pre;
    for (unsigned V = 0; V < NumVars; ++V) {
      if (V) {
        Params += " ";
        Pre += " ";
      }
      Params += format("v%u", V);
      // Half the variables sample a huge range (cancellation fodder for
      // shapes like (x+1)-x), half a small one (libm domains).
      double Hi = R.chance(1, 2) ? 1e12 : 10.0;
      Pre += format("(<= %s v%u %s)",
                    formatDoubleShortest(-Hi / 100.0).c_str(), V,
                    formatDoubleShortest(Hi).c_str());
    }
    std::string Text = format(
        "(FPCore (%s) :name \"diff-rand-%u\" :pre (and %s) %s)",
        Params.c_str(), Index, Pre.c_str(),
        randomFPCoreExpr(R, NumVars, Depth).c_str());
    fpcore::ParseResult P = fpcore::parse(Text);
    if (P.Ok && fpcore::isCompilable(P.Value))
      return std::move(P.Value);
    assert(Salt < 64 && "random core generation failed to converge");
  }
}

inline std::vector<fpcore::Core> randomCores(uint64_t Seed, size_t Count) {
  std::vector<fpcore::Core> Cores;
  for (size_t I = 0; I < Count; ++I)
    Cores.push_back(randomCore(Seed, static_cast<unsigned>(I)));
  return Cores;
}

//===----------------------------------------------------------------------===//
// Random native kernels
//===----------------------------------------------------------------------===//

/// One step of a random straight-line native program: slot Dst = Op over
/// earlier slots A (and B). The program is data, interpreted over
/// native::Real inside the kernel's Fn, so the kernel's math -- and its
/// cache identity string -- derive entirely from the seed.
struct RandNativeOp {
  enum Kind { Add, Sub, Mul, Div, Sqrt, Sin, Cos, Exp, NumKinds };
  Kind K = Add;
  unsigned A = 0;
  unsigned B = 0;
};

inline std::vector<RandNativeOp> randomNativeProgram(Rng &R, unsigned Arity,
                                                     unsigned NumOps) {
  std::vector<RandNativeOp> Ops;
  for (unsigned I = 0; I < NumOps; ++I) {
    RandNativeOp Op;
    Op.K = static_cast<RandNativeOp::Kind>(
        R.nextBelow(RandNativeOp::NumKinds));
    unsigned Live = Arity + I;
    Op.A = static_cast<unsigned>(R.nextBelow(Live));
    Op.B = static_cast<unsigned>(R.nextBelow(Live));
    Ops.push_back(Op);
  }
  return Ops;
}

/// One random native kernel of 1-3 inputs and 3-8 ops. The identity
/// string spells out the full program, honoring Kernel::Identity's "must
/// change when the math changes" contract for free.
inline native::Kernel randomKernel(uint64_t Seed, unsigned Index) {
  Rng R(Seed ^ (0xbf58476d1ce4e5b9ULL * (Index + 1)));
  native::Kernel K;
  unsigned Arity = 1 + static_cast<unsigned>(R.nextBelow(3));
  unsigned NumOps = 3 + static_cast<unsigned>(R.nextBelow(6));
  std::vector<RandNativeOp> Ops = randomNativeProgram(R, Arity, NumOps);

  K.Name = format("diff-rand-native-%u", Index);
  K.Identity = format("diffharness|v1|arity=%u", Arity);
  for (const RandNativeOp &Op : Ops)
    K.Identity += format("|%d:%u:%u", static_cast<int>(Op.K), Op.A, Op.B);
  for (unsigned V = 0; V < Arity; ++V) {
    native::Kernel::InputRange IR;
    IR.Lo = R.chance(1, 2) ? -10.0 : 1.0;
    IR.Hi = R.chance(1, 2) ? 10.0 : 1e12;
    if (IR.Hi < IR.Lo)
      IR.Hi = IR.Lo + 1.0;
    K.Inputs.push_back(IR);
  }
  K.Fn = [Arity, Ops](native::Context &C, const double *, size_t N) {
    std::vector<native::Real> Slots;
    for (size_t I = 0; I < N && I < Arity; ++I)
      Slots.push_back(C.input(I));
    for (const RandNativeOp &Op : Ops) {
      const native::Real &A = Slots[Op.A % Slots.size()];
      const native::Real &B = Slots[Op.B % Slots.size()];
      switch (Op.K) {
      case RandNativeOp::Add:
        Slots.push_back(A + B);
        break;
      case RandNativeOp::Sub:
        Slots.push_back(A - B);
        break;
      case RandNativeOp::Mul:
        Slots.push_back(A * B);
        break;
      case RandNativeOp::Div:
        Slots.push_back(A / B);
        break;
      case RandNativeOp::Sqrt:
        Slots.push_back(native::sqrt(native::fabs(A)));
        break;
      case RandNativeOp::Sin:
        Slots.push_back(native::sin(A));
        break;
      case RandNativeOp::Cos:
        Slots.push_back(native::cos(A));
        break;
      default:
        Slots.push_back(native::exp(A));
        break;
      }
    }
    C.output(Slots.back());
  };
  return K;
}

inline std::vector<native::Kernel> randomKernels(uint64_t Seed,
                                                 size_t Count) {
  std::vector<native::Kernel> Kernels;
  for (size_t I = 0; I < Count; ++I)
    Kernels.push_back(randomKernel(Seed, static_cast<unsigned>(I)));
  return Kernels;
}

//===----------------------------------------------------------------------===//
// Differential drivers
//===----------------------------------------------------------------------===//

/// One sweep's rendered report under \p Cfg (the byte string the
/// tiered-vs-full comparisons are over).
inline std::string sweepJson(const std::vector<fpcore::Core> &Cores,
                             const std::vector<native::Kernel> &Kernels,
                             engine::EngineConfig Cfg) {
  return engine::Engine(Cfg).run(Cores, Kernels).renderJson();
}

/// The (spot pc, root-cause pc) pairs a batch result reports, per
/// benchmark name: the contract surface of `--tier fast` (a subset of
/// full's) and of the corpus gate.
inline std::set<std::pair<std::string, std::pair<uint32_t, uint32_t>>>
rootCauseSet(const engine::BatchResult &R) {
  std::set<std::pair<std::string, std::pair<uint32_t, uint32_t>>> Out;
  for (const engine::BenchmarkResult &BR : R.Benchmarks)
    for (const SpotReport &S : BR.Rep.Spots)
      for (const RootCauseReport &RC : S.RootCauses)
        Out.insert({BR.Name, {S.PC, RC.PC}});
  return Out;
}

} // namespace diffharness
} // namespace herbgrind

#endif // HERBGRIND_TESTS_DIFFHARNESS_H
