//===- tests/test_improve.cpp - Mini-Herbie improver tests ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "improve/Improve.h"

#include "inputs/InputSummary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace herbgrind;
using namespace herbgrind::improve;
using fpcore::Expr;
using fpcore::ExprPtr;

namespace {

ExprPtr parseE(const std::string &S) {
  std::string Err;
  ExprPtr E = fpcore::parseExpr(S, Err);
  EXPECT_TRUE(E) << Err;
  return E;
}

ImproveResult improveOn(const std::string &Src,
                        std::vector<std::string> Params,
                        std::vector<SampleSpec> Specs) {
  ExprPtr E = parseE(Src);
  return improveExpr(*E, Params, Specs);
}

} // namespace

TEST(Improve, SqrtSubtractionIsImproved) {
  ImproveResult R = improveOn("(- (sqrt (+ x 1)) (sqrt x))", {"x"},
                              {SampleSpec::interval(1.0, 1e9)});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved) << "before " << R.ErrorBefore << " after "
                          << R.ErrorAfter;
  EXPECT_LT(R.ErrorAfter, 1.0);
}

TEST(Improve, ExpMinusOneBecomesExpm1) {
  ImproveResult R = improveOn("(- (exp x) 1)", {"x"},
                              {SampleSpec::interval(-1e-5, 1e-5)});
  EXPECT_TRUE(R.Improved);
  EXPECT_NE(R.Best->print().find("expm1"), std::string::npos)
      << R.Best->print();
}

TEST(Improve, LogOnePlusBecomesLog1p) {
  ImproveResult R = improveOn("(log (+ 1 x))", {"x"},
                              {SampleSpec::interval(1e-18, 1e-9)});
  EXPECT_TRUE(R.Improved);
  EXPECT_NE(R.Best->print().find("log1p"), std::string::npos);
}

TEST(Improve, PlotterFragmentGetsRegimeSplitOrRationalization) {
  // The paper's flagship: sqrt(x^2 + y^2) - x for small y.
  SampleSpec XSpec = SampleSpec::interval(1e-12, 0.25);
  SampleSpec YSpec;
  YSpec.Intervals.push_back({-2.6e-9, -1e-14});
  YSpec.Intervals.push_back({1e-14, 2.6e-9});
  ImproveResult R = improveOn("(- (sqrt (+ (* x x) (* y y))) x)", {"x", "y"},
                              {XSpec, YSpec});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved) << "before " << R.ErrorBefore << " after "
                          << R.ErrorAfter;
  EXPECT_LT(R.ErrorAfter, R.ErrorBefore / 2);
}

TEST(Improve, CancellingSumIsSimplified) {
  // (x + 1) - x -> 1 via the structural cancellation rule.
  ImproveResult R = improveOn("(- (+ x 1) x)", {"x"},
                              {SampleSpec::interval(1e10, 1e18)});
  EXPECT_TRUE(R.Improved);
  EXPECT_DOUBLE_EQ(R.ErrorAfter, 0.0);
  EXPECT_EQ(R.Best->print(), "1");
}

TEST(Improve, AccurateExpressionsAreLeftAlone) {
  ImproveResult R = improveOn("(* x 2)", {"x"},
                              {SampleSpec::interval(-100.0, 100.0)});
  EXPECT_FALSE(R.HadSignificantError);
  EXPECT_FALSE(R.Improved);
}

TEST(Improve, OneMinusCosRewrites) {
  ImproveResult R = improveOn("(/ (- 1 (cos x)) (* x x))", {"x"},
                              {SampleSpec::interval(1e-9, 1e-5)});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved);
}

TEST(Improve, RewriteCandidatesIncludeIdentities) {
  ExprPtr E = parseE("(- (sqrt (+ x 1)) (sqrt x))");
  std::vector<ExprPtr> Cands = rewriteCandidates(*E);
  bool FoundRationalized = false;
  for (const ExprPtr &C : Cands)
    if (C->print() == "(/ (- (+ x 1) x) (+ (sqrt (+ x 1)) (sqrt x)))")
      FoundRationalized = true;
  EXPECT_TRUE(FoundRationalized);
}

TEST(Improve, MeanErrorAgreesWithIntuition) {
  Rng R(3);
  ExprPtr Bad = parseE("(- (+ x 1) x)");
  ExprPtr Good = parseE("(* x 1)");
  auto Points = samplePoints({"x"}, {SampleSpec::interval(1e15, 1e17)}, 64,
                             R);
  EXPECT_GT(meanErrorBits(*Bad, Points, 256), 20.0);
  EXPECT_EQ(meanErrorBits(*Good, Points, 256), 0.0);
}

TEST(Improve, FromSymExprConversion) {
  auto X = SymExpr::makeVar(0);
  auto One = SymExpr::makeConst(1.0);
  auto Add = SymExpr::makeOp(Opcode::AddF64, 1);
  Add->Kids.push_back(std::move(X));
  Add->Kids.push_back(std::move(One));
  auto Sqrt = SymExpr::makeOp(Opcode::SqrtF64, 2);
  Sqrt->Kids.push_back(std::move(Add));
  ExprPtr E = fromSymExpr(*Sqrt);
  EXPECT_EQ(E->print(), "(sqrt (+ x 1))");
}

TEST(Improve, SpecsFromCharacteristics) {
  InputCharacteristics Chars;
  Chars.Vars.resize(1);
  Chars.Vars[0].add(-2.0);
  Chars.Vars[0].add(-1.0);
  Chars.Vars[0].add(3.0);
  Chars.Vars[0].add(5.0);

  auto Off = specsFromCharacteristics(Chars, 1, RangeMode::Off);
  EXPECT_EQ(Off[0].Intervals.size(), 1u);
  EXPECT_LT(Off[0].Intervals[0].first, -1e8);

  auto Single = specsFromCharacteristics(Chars, 1, RangeMode::Single);
  EXPECT_EQ(Single[0].Intervals.size(), 1u);
  EXPECT_EQ(Single[0].Intervals[0].first, -2.0);
  EXPECT_EQ(Single[0].Intervals[0].second, 5.0);

  auto Split = specsFromCharacteristics(Chars, 1, RangeMode::SignSplit);
  ASSERT_EQ(Split[0].Intervals.size(), 2u);
  EXPECT_EQ(Split[0].Intervals[0].first, -2.0);
  EXPECT_EQ(Split[0].Intervals[0].second, -1.0);
  EXPECT_EQ(Split[0].Intervals[1].first, 3.0);
  EXPECT_EQ(Split[0].Intervals[1].second, 5.0);
}

TEST(Improve, SameExprChecksBinderArityBeforeComparing) {
  // Regression: comparing let/while forms used to index B's initializers
  // over A's count -- an out-of-bounds read whenever the arities differ
  // (equal bind-name vectors do not guarantee equal initializer counts
  // on hand-built or partially-rewritten trees).
  auto MakeLet = [](size_t NumInits) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Let;
    E->Binds = {"a"};
    for (size_t I = 0; I < NumInits; ++I)
      E->Inits.push_back(Expr::num(static_cast<double>(I + 1)));
    E->Args.push_back(Expr::var("a"));
    return E;
  };
  ExprPtr One = MakeLet(1), Zero = MakeLet(0), Two = MakeLet(2);
  EXPECT_TRUE(sameExpr(*One, *One));
  EXPECT_FALSE(sameExpr(*One, *Zero));
  EXPECT_FALSE(sameExpr(*Zero, *One));
  EXPECT_FALSE(sameExpr(*One, *Two));
}

TEST(Improve, SameExprDistinguishesWhileUpdatesAndSequencing) {
  auto MakeWhile = [](double Step, bool Sequential) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::While;
    E->Sequential = Sequential;
    E->Binds = {"i"};
    E->Inits.push_back(Expr::num(0.0));
    std::vector<ExprPtr> Add;
    Add.push_back(Expr::var("i"));
    Add.push_back(Expr::num(Step));
    E->Updates.push_back(Expr::op("+", std::move(Add)));
    std::vector<ExprPtr> Cmp;
    Cmp.push_back(Expr::var("i"));
    Cmp.push_back(Expr::num(3.0));
    E->Args.push_back(Expr::op("<", std::move(Cmp)));
    E->Args.push_back(Expr::var("i"));
    return E;
  };
  ExprPtr A = MakeWhile(1.0, false);
  ExprPtr B = MakeWhile(2.0, false);
  ExprPtr C = MakeWhile(1.0, true);
  EXPECT_TRUE(sameExpr(*A, *A));
  EXPECT_FALSE(sameExpr(*A, *B)) << "updates must be compared";
  EXPECT_FALSE(sameExpr(*A, *C)) << "while vs while* must differ";
}

TEST(Improve, MeanErrorStaysFiniteOnPartialDomains) {
  // Regression: one non-finite per-point error used to poison the whole
  // mean, making every candidate compare as "no improvement". Points
  // where the expression is undefined must saturate instead.
  Rng R(7);
  ExprPtr Log = parseE("(log x)");
  auto NegPoints =
      samplePoints({"x"}, {SampleSpec::interval(-2.0, -1.0)}, 32, R);
  EXPECT_TRUE(std::isfinite(meanErrorBits(*Log, NegPoints, 256)));

  // An improvable expression still improves when the sampled interval
  // leaks into its undefined region (x < 0 makes sqrt(x) NaN).
  SampleSpec Leaky;
  Leaky.Intervals.push_back({-0.5, -1e-6});
  Leaky.Intervals.push_back({1.0, 1e9});
  ImproveResult Res =
      improveOn("(- (sqrt (+ x 1)) (sqrt x))", {"x"}, {Leaky});
  EXPECT_TRUE(std::isfinite(Res.ErrorBefore));
  EXPECT_TRUE(std::isfinite(Res.ErrorAfter));
  EXPECT_TRUE(Res.Improved) << "before " << Res.ErrorBefore << " after "
                            << Res.ErrorAfter;
}

TEST(Improve, InvertedIntervalsAreNormalizedNotCollapsed) {
  // Regression: an inverted interval used to collapse every sample to
  // the single point Lo, hiding all error on that variable.
  Rng R(11);
  auto Points = samplePoints({"x"}, {SampleSpec::interval(5.0, 1.0)}, 64, R);
  bool AllSame = true;
  for (const auto &Env : Points) {
    double V = Env.at("x");
    EXPECT_GE(V, 1.0);
    EXPECT_LE(V, 5.0);
    AllSame = AllSame && V == Points.front().at("x");
  }
  EXPECT_FALSE(AllSame);
}

TEST(Improve, NaNIntervalEndpointsDegradeToTheWholeLine) {
  // Direct callers can hand samplePoints a NaN-bounded interval; it must
  // neither abort (betweenOrdinals requires ordered finite bounds) nor
  // emit NaN samples (NaN points score zero error and hide everything).
  Rng R(13);
  auto Points = samplePoints(
      {"x"}, {SampleSpec::interval(std::nan(""), 1.0)}, 16, R);
  for (const auto &Env : Points)
    EXPECT_FALSE(std::isnan(Env.at("x")));
}

TEST(Improve, SpecsNormalizeInvertedAndNaNRanges) {
  InputCharacteristics Chars;
  Chars.Vars.resize(1);
  Chars.Vars[0].HasRange = true;
  Chars.Vars[0].Lo = 3.0; // inverted on purpose
  Chars.Vars[0].Hi = -2.0;
  auto Specs = specsFromCharacteristics(Chars, 1, RangeMode::Single);
  ASSERT_EQ(Specs[0].Intervals.size(), 1u);
  EXPECT_EQ(Specs[0].Intervals[0].first, -2.0);
  EXPECT_EQ(Specs[0].Intervals[0].second, 3.0);

  Chars.Vars[0].Hi = std::nan("");
  auto NaNSpecs = specsFromCharacteristics(Chars, 1, RangeMode::Single);
  ASSERT_EQ(NaNSpecs[0].Intervals.size(), 1u);
  // A NaN bound describes no sampleable range; the sampler falls back to
  // the whole line rather than propagating NaN sample values.
  EXPECT_EQ(NaNSpecs[0].Intervals[0].first,
            -std::numeric_limits<double>::max());

  // SignSplit with its only subrange NaN-bounded must degrade to the
  // whole line too, not to the degenerate point {0, 0}.
  Chars.Vars[0].HasNeg = true;
  Chars.Vars[0].NegLo = std::nan("");
  Chars.Vars[0].NegHi = -1.0;
  Chars.Vars[0].HasPos = false;
  Chars.Vars[0].SawZero = false;
  auto SplitNaN = specsFromCharacteristics(Chars, 1, RangeMode::SignSplit);
  ASSERT_EQ(SplitNaN[0].Intervals.size(), 1u);
  EXPECT_EQ(SplitNaN[0].Intervals[0].first,
            -std::numeric_limits<double>::max());
}

TEST(Improve, WholeLineSpansTheFiniteDoubles) {
  SampleSpec S = SampleSpec::wholeLine();
  ASSERT_EQ(S.Intervals.size(), 1u);
  EXPECT_EQ(S.Intervals[0].first, -std::numeric_limits<double>::max());
  EXPECT_EQ(S.Intervals[0].second, std::numeric_limits<double>::max());
}

TEST(Improve, VariancePairRewrite) {
  // One-pass variance of two nearly-equal samples: catastrophic
  // cancellation between the mean-square and squared-mean.
  ImproveResult R = improveOn(
      "(- (/ (+ (* x x) (* y y)) 2) (* (/ (+ x y) 2) (/ (+ x y) 2)))",
      {"x", "y"},
      {SampleSpec::interval(1e7, 1.000001e7),
       SampleSpec::interval(1e7, 1.000001e7)});
  EXPECT_TRUE(R.HadSignificantError);
}
