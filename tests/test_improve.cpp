//===- tests/test_improve.cpp - Mini-Herbie improver tests ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "improve/Improve.h"

#include "inputs/InputSummary.h"

#include <gtest/gtest.h>

using namespace herbgrind;
using namespace herbgrind::improve;
using fpcore::Expr;
using fpcore::ExprPtr;

namespace {

ExprPtr parseE(const std::string &S) {
  std::string Err;
  ExprPtr E = fpcore::parseExpr(S, Err);
  EXPECT_TRUE(E) << Err;
  return E;
}

ImproveResult improveOn(const std::string &Src,
                        std::vector<std::string> Params,
                        std::vector<SampleSpec> Specs) {
  ExprPtr E = parseE(Src);
  return improveExpr(*E, Params, Specs);
}

} // namespace

TEST(Improve, SqrtSubtractionIsImproved) {
  ImproveResult R = improveOn("(- (sqrt (+ x 1)) (sqrt x))", {"x"},
                              {SampleSpec::interval(1.0, 1e9)});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved) << "before " << R.ErrorBefore << " after "
                          << R.ErrorAfter;
  EXPECT_LT(R.ErrorAfter, 1.0);
}

TEST(Improve, ExpMinusOneBecomesExpm1) {
  ImproveResult R = improveOn("(- (exp x) 1)", {"x"},
                              {SampleSpec::interval(-1e-5, 1e-5)});
  EXPECT_TRUE(R.Improved);
  EXPECT_NE(R.Best->print().find("expm1"), std::string::npos)
      << R.Best->print();
}

TEST(Improve, LogOnePlusBecomesLog1p) {
  ImproveResult R = improveOn("(log (+ 1 x))", {"x"},
                              {SampleSpec::interval(1e-18, 1e-9)});
  EXPECT_TRUE(R.Improved);
  EXPECT_NE(R.Best->print().find("log1p"), std::string::npos);
}

TEST(Improve, PlotterFragmentGetsRegimeSplitOrRationalization) {
  // The paper's flagship: sqrt(x^2 + y^2) - x for small y.
  SampleSpec XSpec = SampleSpec::interval(1e-12, 0.25);
  SampleSpec YSpec;
  YSpec.Intervals.push_back({-2.6e-9, -1e-14});
  YSpec.Intervals.push_back({1e-14, 2.6e-9});
  ImproveResult R = improveOn("(- (sqrt (+ (* x x) (* y y))) x)", {"x", "y"},
                              {XSpec, YSpec});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved) << "before " << R.ErrorBefore << " after "
                          << R.ErrorAfter;
  EXPECT_LT(R.ErrorAfter, R.ErrorBefore / 2);
}

TEST(Improve, CancellingSumIsSimplified) {
  // (x + 1) - x -> 1 via the structural cancellation rule.
  ImproveResult R = improveOn("(- (+ x 1) x)", {"x"},
                              {SampleSpec::interval(1e10, 1e18)});
  EXPECT_TRUE(R.Improved);
  EXPECT_DOUBLE_EQ(R.ErrorAfter, 0.0);
  EXPECT_EQ(R.Best->print(), "1");
}

TEST(Improve, AccurateExpressionsAreLeftAlone) {
  ImproveResult R = improveOn("(* x 2)", {"x"},
                              {SampleSpec::interval(-100.0, 100.0)});
  EXPECT_FALSE(R.HadSignificantError);
  EXPECT_FALSE(R.Improved);
}

TEST(Improve, OneMinusCosRewrites) {
  ImproveResult R = improveOn("(/ (- 1 (cos x)) (* x x))", {"x"},
                              {SampleSpec::interval(1e-9, 1e-5)});
  EXPECT_TRUE(R.HadSignificantError);
  EXPECT_TRUE(R.Improved);
}

TEST(Improve, RewriteCandidatesIncludeIdentities) {
  ExprPtr E = parseE("(- (sqrt (+ x 1)) (sqrt x))");
  std::vector<ExprPtr> Cands = rewriteCandidates(*E);
  bool FoundRationalized = false;
  for (const ExprPtr &C : Cands)
    if (C->print() == "(/ (- (+ x 1) x) (+ (sqrt (+ x 1)) (sqrt x)))")
      FoundRationalized = true;
  EXPECT_TRUE(FoundRationalized);
}

TEST(Improve, MeanErrorAgreesWithIntuition) {
  Rng R(3);
  ExprPtr Bad = parseE("(- (+ x 1) x)");
  ExprPtr Good = parseE("(* x 1)");
  auto Points = samplePoints({"x"}, {SampleSpec::interval(1e15, 1e17)}, 64,
                             R);
  EXPECT_GT(meanErrorBits(*Bad, Points, 256), 20.0);
  EXPECT_EQ(meanErrorBits(*Good, Points, 256), 0.0);
}

TEST(Improve, FromSymExprConversion) {
  auto X = SymExpr::makeVar(0);
  auto One = SymExpr::makeConst(1.0);
  auto Add = SymExpr::makeOp(Opcode::AddF64, 1);
  Add->Kids.push_back(std::move(X));
  Add->Kids.push_back(std::move(One));
  auto Sqrt = SymExpr::makeOp(Opcode::SqrtF64, 2);
  Sqrt->Kids.push_back(std::move(Add));
  ExprPtr E = fromSymExpr(*Sqrt);
  EXPECT_EQ(E->print(), "(sqrt (+ x 1))");
}

TEST(Improve, SpecsFromCharacteristics) {
  InputCharacteristics Chars;
  Chars.Vars.resize(1);
  Chars.Vars[0].add(-2.0);
  Chars.Vars[0].add(-1.0);
  Chars.Vars[0].add(3.0);
  Chars.Vars[0].add(5.0);

  auto Off = specsFromCharacteristics(Chars, 1, RangeMode::Off);
  EXPECT_EQ(Off[0].Intervals.size(), 1u);
  EXPECT_LT(Off[0].Intervals[0].first, -1e8);

  auto Single = specsFromCharacteristics(Chars, 1, RangeMode::Single);
  EXPECT_EQ(Single[0].Intervals.size(), 1u);
  EXPECT_EQ(Single[0].Intervals[0].first, -2.0);
  EXPECT_EQ(Single[0].Intervals[0].second, 5.0);

  auto Split = specsFromCharacteristics(Chars, 1, RangeMode::SignSplit);
  ASSERT_EQ(Split[0].Intervals.size(), 2u);
  EXPECT_EQ(Split[0].Intervals[0].first, -2.0);
  EXPECT_EQ(Split[0].Intervals[0].second, -1.0);
  EXPECT_EQ(Split[0].Intervals[1].first, 3.0);
  EXPECT_EQ(Split[0].Intervals[1].second, 5.0);
}

TEST(Improve, VariancePairRewrite) {
  // One-pass variance of two nearly-equal samples: catastrophic
  // cancellation between the mean-square and squared-mean.
  ImproveResult R = improveOn(
      "(- (/ (+ (* x x) (* y y)) 2) (* (/ (+ x y) 2) (/ (+ x y) 2)))",
      {"x", "y"},
      {SampleSpec::interval(1e7, 1.000001e7),
       SampleSpec::interval(1e7, 1.000001e7)});
  EXPECT_TRUE(R.HadSignificantError);
}
