//===- tests/test_tiered.cpp - Tiered shadowing differential tests --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The tiered-shadowing contract, checked differentially against the full
// shadow on seeded random programs (DiffHarness.h) and real benchmarks:
//
//   1. Confirm tier reports are BYTE-identical to full-tier reports --
//      across random FPCore cores, random native kernels, worker counts,
//      cold and warm result caches, and the emit/merge-shards path.
//   2. Fast tier reports are deterministic across worker counts, and
//      their (spot, root cause) pairs are a subset of full's.
//   3. The tier accounting holds: clean benchmarks never touch the full
//      shadow in confirm mode, escalation stays below 100% on mixed
//      workloads, and full mode keeps every tier counter at zero.
//
//===----------------------------------------------------------------------===//

#include "DiffHarness.h"

#include "engine/ResultCache.h"
#include "fpcore/Corpus.h"
#include "native/Kernel.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace herbgrind;
using namespace herbgrind::engine;
using namespace herbgrind::diffharness;

namespace {

/// A scoped temp directory under the system temp root.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-tiered-" + Tag + "-" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

EngineConfig smallConfig(unsigned Jobs, TierMode Tier) {
  EngineConfig Cfg;
  Cfg.Jobs = Jobs;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 3;
  Cfg.Tier = Tier;
  return Cfg;
}

/// A benchmark whose spots are clean on every input: well-conditioned
/// addition over a tight range. Tier 0 must never escalate it.
fpcore::Core benignCore() {
  fpcore::ParseResult P = fpcore::parse(
      "(FPCore (x) :name \"benign add\" :pre (<= 1 x 2) (+ x 1))");
  EXPECT_TRUE(P.Ok);
  return std::move(P.Value);
}

/// The canonical erroneous benchmark (catastrophic cancellation).
fpcore::Core cancellingCore() {
  for (const fpcore::Core &C : fpcore::corpus())
    if (C.Name == "NMSE example 3.1")
      return C.clone();
  ADD_FAILURE() << "corpus benchmark missing";
  return benignCore();
}

} // namespace

//===----------------------------------------------------------------------===//
// Confirm tier: byte identity
//===----------------------------------------------------------------------===//

TEST(TieredDiff, ConfirmMatchesFullOnRandomPrograms) {
  for (uint64_t Seed : {0x7001ULL, 0x7002ULL, 0x7003ULL}) {
    std::vector<fpcore::Core> Cores = randomCores(Seed, 6);
    std::vector<native::Kernel> Kernels = randomKernels(Seed, 3);
    std::string Full =
        sweepJson(Cores, Kernels, smallConfig(2, TierMode::Full));
    std::string Confirm =
        sweepJson(Cores, Kernels, smallConfig(2, TierMode::Confirm));
    EXPECT_EQ(Full, Confirm) << "seed " << Seed;
  }
}

TEST(TieredDiff, ConfirmMatchesFullAcrossWorkerCounts) {
  std::vector<fpcore::Core> Cores = randomCores(0x7010, 5);
  std::vector<native::Kernel> Kernels = randomKernels(0x7010, 2);
  std::string Full = sweepJson(Cores, Kernels, smallConfig(1, TierMode::Full));
  for (unsigned Jobs : {1u, 4u, 7u})
    EXPECT_EQ(Full,
              sweepJson(Cores, Kernels, smallConfig(Jobs, TierMode::Confirm)))
        << "jobs " << Jobs;
}

TEST(TieredDiff, ConfirmMatchesFullOnRealBenchmarks) {
  std::vector<fpcore::Core> Cores;
  Cores.push_back(benignCore());
  Cores.push_back(cancellingCore());
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= 10)
      break;
  }
  const std::vector<native::Kernel> &Kernels = native::demoKernels();
  EXPECT_EQ(sweepJson(Cores, Kernels, smallConfig(3, TierMode::Full)),
            sweepJson(Cores, Kernels, smallConfig(3, TierMode::Confirm)));
}

TEST(TieredDiff, ConfirmSharesFullsCacheBothWays) {
  // Confirm and Full share one config hash: a cold Full sweep warms the
  // cache for a Confirm sweep and vice versa, and the reports stay
  // byte-identical in all four legs.
  std::vector<fpcore::Core> Cores = randomCores(0x7020, 4);
  TempDir Cache("sharedcache");

  EngineConfig FullCfg = smallConfig(2, TierMode::Full);
  FullCfg.CacheDir = Cache.Path;
  EngineConfig ConfCfg = smallConfig(2, TierMode::Confirm);
  ConfCfg.CacheDir = Cache.Path;
  ASSERT_EQ(configHash(FullCfg), configHash(ConfCfg));

  BatchResult FullCold = Engine(FullCfg).run(Cores);
  BatchResult ConfWarm = Engine(ConfCfg).run(Cores);
  EXPECT_EQ(FullCold.renderJson(), ConfWarm.renderJson());
  // Every suspect benchmark's shard came from the cache the Full sweep
  // stored; clean benchmarks skip the cache by design.
  EXPECT_EQ(ConfWarm.Stats.AnalyzedShards, 0u);

  TempDir Cache2("sharedcache2");
  ConfCfg.CacheDir = Cache2.Path;
  FullCfg.CacheDir = Cache2.Path;
  BatchResult ConfCold = Engine(ConfCfg).run(Cores);
  BatchResult FullWarm = Engine(FullCfg).run(Cores);
  EXPECT_EQ(ConfCold.renderJson(), FullWarm.renderJson());
  EXPECT_EQ(FullWarm.renderJson(), FullCold.renderJson());
}

TEST(TieredDiff, ConfirmEmittedShardsMergeToFullReport) {
  std::vector<fpcore::Core> Cores = randomCores(0x7030, 4);
  std::vector<native::Kernel> Kernels = randomKernels(0x7030, 2);
  TempDir Emit("emit");

  EngineConfig Cfg = smallConfig(2, TierMode::Confirm);
  Cfg.EmitShardDir = Emit.Path;
  BatchResult Swept = Engine(Cfg).run(Cores, Kernels);
  ASSERT_EQ(Swept.Stats.EmitFailures, 0u);

  std::vector<ShardDoc> Docs;
  std::vector<std::string> Paths;
  for (const auto &E : std::filesystem::directory_iterator(Emit.Path))
    Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &P : Paths) {
    std::string Text, Err;
    ASSERT_TRUE(readFile(P, Text)) << P;
    ShardDoc Doc;
    ASSERT_TRUE(parseShardJson(Text, Doc, Err)) << P << ": " << Err;
    Docs.push_back(std::move(Doc));
  }
  ASSERT_EQ(Docs.size(), Swept.Stats.Shards);

  BatchResult Merged;
  std::string Err, Warnings;
  ASSERT_TRUE(mergeShards(std::move(Docs), Merged, Err, &Warnings)) << Err;
  EXPECT_TRUE(Warnings.empty()) << Warnings;
  EXPECT_EQ(Merged.renderJson(), Swept.renderJson());
  EXPECT_EQ(Merged.renderJson(),
            sweepJson(Cores, Kernels, smallConfig(1, TierMode::Full)));
}

//===----------------------------------------------------------------------===//
// Fast tier: determinism and the subset contract
//===----------------------------------------------------------------------===//

TEST(TieredDiff, FastIsDeterministicAcrossWorkerCounts) {
  std::vector<fpcore::Core> Cores = randomCores(0x7040, 6);
  std::vector<native::Kernel> Kernels = randomKernels(0x7040, 3);
  std::string One = sweepJson(Cores, Kernels, smallConfig(1, TierMode::Fast));
  EXPECT_EQ(One, sweepJson(Cores, Kernels, smallConfig(4, TierMode::Fast)));
  EXPECT_EQ(One, sweepJson(Cores, Kernels, smallConfig(7, TierMode::Fast)));
}

TEST(TieredDiff, FastRootCausesAreSubsetOfFull) {
  for (uint64_t Seed : {0x7050ULL, 0x7051ULL}) {
    std::vector<fpcore::Core> Cores = randomCores(Seed, 6);
    std::vector<native::Kernel> Kernels = randomKernels(Seed, 3);
    BatchResult Full =
        Engine(smallConfig(2, TierMode::Full)).run(Cores, Kernels);
    BatchResult Fast =
        Engine(smallConfig(2, TierMode::Fast)).run(Cores, Kernels);
    auto FullSet = rootCauseSet(Full);
    auto FastSet = rootCauseSet(Fast);
    for (const auto &Entry : FastSet)
      EXPECT_TRUE(FullSet.count(Entry))
          << "seed " << Seed << ": fast-tier root cause (benchmark '"
          << Entry.first << "', spot " << Entry.second.first << ", op "
          << Entry.second.second << ") absent from the full sweep";
  }
}

TEST(TieredDiff, FastReportsEveryErroneousSpotFullReports) {
  // Predicate soundness at the report level: every erroneous spot the
  // full shadow finds must survive the fast tier's escalation filter
  // (fast analyzes only suspect runs, but a spot that is erroneous in
  // full mode has at least one suspect run by soundness).
  std::vector<fpcore::Core> Cores;
  Cores.push_back(cancellingCore());
  Cores.push_back(benignCore());
  BatchResult Full = Engine(smallConfig(1, TierMode::Full)).run(Cores);
  BatchResult Fast = Engine(smallConfig(1, TierMode::Fast)).run(Cores);
  ASSERT_EQ(Full.Benchmarks.size(), Fast.Benchmarks.size());
  for (size_t B = 0; B < Full.Benchmarks.size(); ++B) {
    std::set<uint32_t> FastSpots;
    for (const SpotReport &S : Fast.Benchmarks[B].Rep.Spots)
      FastSpots.insert(S.PC);
    for (const SpotReport &S : Full.Benchmarks[B].Rep.Spots)
      EXPECT_TRUE(FastSpots.count(S.PC))
          << Full.Benchmarks[B].Name << " spot " << S.PC;
  }
}

TEST(TieredDiff, FastCacheEntriesNeverAliasFull) {
  EngineConfig FullCfg = smallConfig(1, TierMode::Full);
  EngineConfig FastCfg = smallConfig(1, TierMode::Fast);
  EXPECT_NE(configHash(FullCfg), configHash(FastCfg));

  // A warm fast-tier cache satisfies fast-tier sweeps but never a full
  // sweep of the same configuration.
  std::vector<fpcore::Core> Cores = randomCores(0x7060, 3);
  TempDir Cache("fastcache");
  FastCfg.CacheDir = Cache.Path;
  FullCfg.CacheDir = Cache.Path;
  BatchResult FastCold = Engine(FastCfg).run(Cores);
  EXPECT_GT(FastCold.Stats.AnalyzedShards, 0u);
  BatchResult FastWarm = Engine(FastCfg).run(Cores);
  EXPECT_EQ(FastWarm.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(FastCold.renderJson(), FastWarm.renderJson());
  BatchResult Full = Engine(FullCfg).run(Cores);
  EXPECT_EQ(Full.Stats.ResultCacheHits, 0u);
}

//===----------------------------------------------------------------------===//
// Tier accounting
//===----------------------------------------------------------------------===//

TEST(TieredStats, CleanBenchmarkNeverTouchesTheFullShadow) {
  std::vector<fpcore::Core> Cores;
  Cores.push_back(benignCore());
  BatchResult R = Engine(smallConfig(2, TierMode::Confirm)).run(Cores);
  EXPECT_EQ(R.Stats.ConfirmedBenchmarks, 0u);
  EXPECT_EQ(R.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(R.Stats.EscalatedRuns, 0u);
  EXPECT_GT(R.Stats.Tier0Runs, 0u);
  EXPECT_GT(R.Stats.Tier0Ops, 0u);
  // The skipped benchmark still reports its full layout...
  ASSERT_EQ(R.Benchmarks.size(), 1u);
  EXPECT_EQ(R.Benchmarks[0].Runs, 8u);
  EXPECT_EQ(R.Benchmarks[0].Shards, 3u);
  // ...and an empty report, exactly like the full sweep's.
  EXPECT_TRUE(R.Benchmarks[0].Rep.Spots.empty());
  EXPECT_EQ(R.renderJson(),
            Engine(smallConfig(2, TierMode::Full)).run(Cores).renderJson());
}

TEST(TieredStats, ErroneousBenchmarkConfirms) {
  std::vector<fpcore::Core> Cores;
  Cores.push_back(cancellingCore());
  Cores.push_back(benignCore());
  BatchResult R = Engine(smallConfig(2, TierMode::Confirm)).run(Cores);
  EXPECT_EQ(R.Stats.ConfirmedBenchmarks, 1u);
  EXPECT_GT(R.Stats.EscalatedRuns, 0u);
  // Escalation stays strictly below the sweep: the benign benchmark's
  // runs never replay.
  EXPECT_LT(R.Stats.EscalatedRuns, R.Stats.Runs);
}

TEST(TieredStats, FullModeKeepsTierCountersAtZero) {
  std::vector<fpcore::Core> Cores;
  Cores.push_back(cancellingCore());
  BatchResult R = Engine(smallConfig(2, TierMode::Full)).run(Cores);
  EXPECT_EQ(R.Stats.Tier0Runs, 0u);
  EXPECT_EQ(R.Stats.Tier0Ops, 0u);
  EXPECT_EQ(R.Stats.EscalatedRuns, 0u);
  EXPECT_EQ(R.Stats.ConfirmedBenchmarks, 0u);
}

TEST(TieredStats, FastEscalatesOnlySuspectRuns) {
  std::vector<fpcore::Core> Cores;
  Cores.push_back(benignCore());
  BatchResult R = Engine(smallConfig(1, TierMode::Fast)).run(Cores);
  EXPECT_EQ(R.Stats.EscalatedRuns, 0u);
  EXPECT_EQ(R.Stats.Tier0Runs, R.Stats.Runs);
  EXPECT_TRUE(R.Benchmarks[0].Rep.Spots.empty());
}
