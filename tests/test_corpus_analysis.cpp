//===- tests/test_corpus_analysis.cpp - Corpus-wide integration sweep -----===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// One parameterized integration test per corpus benchmark: compile, run
// under full instrumentation on sampled inputs, and check the engine's
// global invariants -- concrete outputs bit-identical to the reference
// interpreter, well-formed records, renderable reports, and consistent
// incremental statistics.
//
//===----------------------------------------------------------------------===//

#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace herbgrind;
using namespace herbgrind::fpcore;

namespace {

class CorpusAnalysisTest : public ::testing::TestWithParam<size_t> {};

} // namespace

static std::vector<std::vector<double>> sampleInputsFor(const Core &C,
                                                        int Count,
                                                        uint64_t Seed) {
  Rng R(Seed);
  std::vector<VarRange> Ranges = sampleRanges(C);
  std::vector<std::vector<double>> Sets;
  for (int I = 0; I < Count; ++I) {
    std::vector<double> In;
    for (const VarRange &VR : Ranges)
      In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

TEST_P(CorpusAnalysisTest, InstrumentedRunUpholdsInvariants) {
  const Core &C = corpus()[GetParam()];
  Program P = compile(C);
  Herbgrind HG(P);
  auto Inputs = sampleInputsFor(C, 4, 0x900d + GetParam());

  for (const std::vector<double> &In : Inputs) {
    HG.runOnInput(In);
    RunResult Ref = interpret(P, In);
    // Invariant 1: instrumentation is observationally transparent.
    ASSERT_EQ(HG.lastOutputs().size(), Ref.Outputs.size()) << C.Name;
    for (size_t O = 0; O < Ref.Outputs.size(); ++O) {
      double Got = HG.lastOutputs()[O].asF64();
      double Want = Ref.Outputs[O].asF64();
      if (std::isnan(Want))
        EXPECT_TRUE(std::isnan(Got)) << C.Name;
      else
        EXPECT_EQ(bitsOfDouble(Got), bitsOfDouble(Want)) << C.Name;
    }
  }

  // Invariant 2: well-formed op records.
  for (const auto &[PC, Rec] : HG.opRecords()) {
    EXPECT_GT(Rec.Executions, 0u) << C.Name;
    EXPECT_LE(Rec.Flagged, Rec.Executions) << C.Name;
    EXPECT_EQ(Rec.LocalError.count(), Rec.Executions) << C.Name;
    ASSERT_TRUE(Rec.Expr) << C.Name;
    EXPECT_FALSE(Rec.Expr->fpcoreBody().empty()) << C.Name;
    // Input summaries never outnumber the expression's variables.
    EXPECT_LE(Rec.TotalInputs.Vars.size(), Rec.NextVarIdx + 1) << C.Name;
  }

  // Invariant 3: spots never report more errors than executions, and
  // every influencing op has a record.
  for (const auto &[PC, Spot] : HG.spotRecords()) {
    EXPECT_LE(Spot.Erroneous, Spot.Executions) << C.Name;
    for (uint32_t OpPC : Spot.InfluencingOps)
      EXPECT_TRUE(HG.opRecords().count(OpPC)) << C.Name;
  }

  // Invariant 4: the report always renders.
  EXPECT_FALSE(buildReport(HG).render().empty()) << C.Name;

  // Invariant 5: statistics are consistent.
  AnalysisStats St = HG.stats();
  EXPECT_GT(St.InstrumentedSteps, 0u) << C.Name;
  EXPECT_GE(St.ShadowValuesAllocated, HG.opRecords().size()) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CorpusAnalysisTest,
    ::testing::Range<size_t>(0, corpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = corpus()[Info.param].Name;
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
