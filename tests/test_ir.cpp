//===- tests/test_ir.cpp - Abstract machine / IR tests --------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/LibmLowering.h"
#include "ir/Program.h"

#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace herbgrind;

namespace {

/// Builds out(f(inputs)) for a simple straight-line body.
template <typename BodyFn> Program straightLine(BodyFn Body) {
  ProgramBuilder B;
  Body(B);
  B.halt();
  Program P = B.finish();
  EXPECT_EQ(P.validate(), "");
  return P;
}

double runOne(const Program &P, std::vector<double> Inputs) {
  RunResult R = interpret(P, Inputs);
  EXPECT_EQ(R.Outputs.size(), 1u);
  return R.Outputs[0].asF64();
}

} // namespace

TEST(IR, ConstAndArithmetic) {
  Program P = straightLine([](ProgramBuilder &B) {
    auto A = B.constF64(3.0);
    auto C = B.constF64(4.0);
    B.out(B.op(Opcode::AddF64, B.op(Opcode::MulF64, A, A),
               B.op(Opcode::MulF64, C, C)));
  });
  EXPECT_EQ(runOne(P, {}), 25.0);
}

TEST(IR, InputsFlowThrough) {
  Program P = straightLine([](ProgramBuilder &B) {
    B.out(B.op(Opcode::SubF64, B.input(0), B.input(1)));
  });
  EXPECT_EQ(runOne(P, {10.0, 4.0}), 6.0);
}

TEST(IR, AllScalarF64OpsMatchLibm) {
  struct Case {
    Opcode Op;
    double (*Ref1)(double);
  };
  Rng R(31);
  for (Case C : std::initializer_list<Case>{
           {Opcode::SqrtF64, std::sqrt},
           {Opcode::ExpF64, std::exp},
           {Opcode::LogF64, std::log},
           {Opcode::SinF64, std::sin},
           {Opcode::CosF64, std::cos},
           {Opcode::TanF64, std::tan},
           {Opcode::AtanF64, std::atan},
           {Opcode::CbrtF64, std::cbrt},
           {Opcode::FloorF64, std::floor},
           {Opcode::CeilF64, std::ceil}}) {
    double X = R.uniformReal(0.1, 50.0);
    ProgramBuilder B;
    B.out(B.op(C.Op, B.input(0)));
    B.halt();
    Program P = B.finish();
    EXPECT_EQ(bitsOfDouble(runOne(P, {X})), bitsOfDouble(C.Ref1(X)))
        << opInfo(C.Op).Name;
  }
}

TEST(IR, BranchesAndLoops) {
  // Sum 1..100 with a loop: i, acc as mutable temps rebound via copyTo.
  ProgramBuilder B;
  auto I = B.constF64(1.0);
  auto Acc = B.constF64(0.0);
  auto Limit = B.constF64(100.0);
  auto One = B.constF64(1.0);
  auto LoopHead = B.newLabel();
  auto Done = B.newLabel();
  B.bind(LoopHead);
  auto Cond = B.op(Opcode::CmpGTF64, I, Limit);
  B.branchIf(Cond, Done);
  B.copyTo(Acc, B.op(Opcode::AddF64, Acc, I));
  B.copyTo(I, B.op(Opcode::AddF64, I, One));
  B.jump(LoopHead);
  B.bind(Done);
  B.out(Acc);
  B.halt();
  Program P = B.finish();
  ASSERT_EQ(P.validate(), "");
  EXPECT_EQ(runOne(P, {}), 5050.0);
}

TEST(IR, CallAndRet) {
  // main: out(square(7)); square reads/writes thread state slot 0.
  ProgramBuilder B;
  auto Fn = B.newLabel();
  auto X = B.constF64(7.0);
  B.put(0, X);
  B.call(Fn);
  auto Result = B.get(8, ValueType::F64);
  B.out(Result);
  B.halt();
  B.bind(Fn);
  auto Arg = B.get(0, ValueType::F64);
  B.put(8, B.op(Opcode::MulF64, Arg, Arg));
  B.ret();
  Program P = B.finish();
  ASSERT_EQ(P.validate(), "");
  EXPECT_EQ(runOne(P, {}), 49.0);
}

TEST(IR, MemoryRoundTrip) {
  ProgramBuilder B;
  auto Addr = B.constI64(0x1000);
  auto V = B.constF64(2.5);
  B.store(Addr, 0, V);
  B.out(B.load(Addr, 0, ValueType::F64));
  B.halt();
  EXPECT_EQ(runOne(B.finish(), {}), 2.5);
}

TEST(IR, MemoryUnwrittenReadsZero) {
  ProgramBuilder B;
  auto Addr = B.constI64(0x5000);
  B.out(B.load(Addr, 0, ValueType::F64));
  B.halt();
  EXPECT_EQ(runOne(B.finish(), {}), 0.0);
}

TEST(IR, SimdLaneWiseMatchesScalar) {
  ProgramBuilder B;
  auto V1 = B.op(Opcode::BuildV2F64, B.input(0), B.input(1));
  auto V2 = B.op(Opcode::BuildV2F64, B.input(2), B.input(3));
  auto Sum = B.op(Opcode::MulV2F64, V1, V2);
  B.out(B.op(Opcode::ExtractLaneF64, Sum, B.constI64(0)));
  B.out(B.op(Opcode::ExtractLaneF64, Sum, B.constI64(1)));
  B.halt();
  RunResult R = interpret(B.finish(), {2.0, 3.0, 5.0, 7.0});
  ASSERT_EQ(R.Outputs.size(), 2u);
  EXPECT_EQ(R.Outputs[0].asF64(), 10.0);
  EXPECT_EQ(R.Outputs[1].asF64(), 21.0);
}

TEST(IR, SimdStoreScalarReadBack) {
  // Write a V2F64 to memory, read the second lane back as a scalar.
  ProgramBuilder B;
  auto V = B.op(Opcode::BuildV2F64, B.constF64(1.5), B.constF64(-8.25));
  auto Addr = B.constI64(0x2000);
  B.store(Addr, 0, V);
  B.out(B.load(Addr, 8, ValueType::F64));
  B.halt();
  EXPECT_EQ(runOne(B.finish(), {}), -8.25);
}

TEST(IR, XorSignFlipTrick) {
  // gcc-style negation: XOR with the sign mask in both lanes.
  ProgramBuilder B;
  double SignMaskD = doubleFromBits(1ULL << 63);
  auto V = B.op(Opcode::BuildV2F64, B.input(0), B.input(1));
  auto Mask = B.op(Opcode::BuildV2F64, B.constF64(SignMaskD),
                   B.constF64(SignMaskD));
  auto Negated = B.op(Opcode::XorV128, V, Mask);
  B.out(B.op(Opcode::ExtractLaneF64, Negated, B.constI64(0)));
  B.halt();
  EXPECT_EQ(runOne(B.finish(), {42.0, 0.0}), -42.0);
}

TEST(IR, IntegerOps) {
  ProgramBuilder B;
  auto A = B.constI64(0xF0);
  auto C = B.constI64(0x0F);
  auto Or = B.op(Opcode::OrI64, A, C);
  auto Shifted = B.op(Opcode::ShlI64, Or, B.constI64(4));
  B.out(B.op(Opcode::I64toF64, Shifted));
  B.halt();
  EXPECT_EQ(runOne(B.finish(), {}), 0xFF * 16.0);
}

TEST(IR, SarVsShr) {
  ProgramBuilder B;
  auto Neg = B.constI64(-64);
  B.out(B.op(Opcode::I64toF64, B.op(Opcode::SarI64, Neg, B.constI64(3))));
  B.out(B.op(Opcode::I64toF64, B.op(Opcode::ShrI64, Neg, B.constI64(60))));
  B.halt();
  RunResult R = interpret(B.finish(), {});
  EXPECT_EQ(R.Outputs[0].asF64(), -8.0);
  EXPECT_EQ(R.Outputs[1].asF64(), 15.0);
}

TEST(IR, ValidateCatchesBadPrograms) {
  // Missing halt.
  ProgramBuilder B1;
  B1.out(B1.constF64(1.0));
  EXPECT_NE(B1.finish().validate(), "");
}

TEST(IR, PrintContainsMnemonics) {
  ProgramBuilder B;
  B.setLoc(SourceLoc("kernel.c", 12, "f"));
  B.out(B.op(Opcode::AddF64, B.input(0), B.constF64(1.0)));
  B.halt();
  std::string Listing = B.finish().print();
  EXPECT_NE(Listing.find("add.f64"), std::string::npos);
  EXPECT_NE(Listing.find("kernel.c:12"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Static type analysis
//===----------------------------------------------------------------------===//

TEST(TypeAnalysis, InfersStraightLineTypes) {
  ProgramBuilder B;
  auto I = B.constI64(1);
  auto F = B.constF64(1.0);
  auto G = B.op(Opcode::AddF64, F, F);
  B.out(G);
  B.halt();
  Program P = B.finish();
  std::vector<ValueType> Types = inferTempTypes(P);
  EXPECT_EQ(Types[I], ValueType::I64);
  EXPECT_EQ(Types[F], ValueType::F64);
  EXPECT_EQ(Types[G], ValueType::F64);
}

TEST(TypeAnalysis, ConflictingDefsGoToConflict) {
  ProgramBuilder B;
  auto T = B.newTemp();
  B.copyTo(T, B.constI64(1));
  B.copyTo(T, B.constF64(1.0));
  B.out(T);
  B.halt();
  Program P = B.finish();
  EXPECT_EQ(inferTempTypes(P)[T], ValueType::Conflict);
}

TEST(TypeAnalysis, CopyChainsPropagate) {
  ProgramBuilder B;
  auto A = B.constF64(1.0);
  auto T1 = B.newTemp();
  auto T2 = B.newTemp();
  B.copyTo(T1, A);
  B.copyTo(T2, T1);
  B.out(T2);
  B.halt();
  EXPECT_EQ(inferTempTypes(B.finish())[T2], ValueType::F64);
}

//===----------------------------------------------------------------------===//
// Libm lowering
//===----------------------------------------------------------------------===//

class LoweringAccuracyTest
    : public ::testing::TestWithParam<std::pair<Opcode, double (*)(double)>> {
};

TEST_P(LoweringAccuracyTest, LoweredKernelsStayWithinAFewUlps) {
  auto [Op, Ref] = GetParam();
  ProgramBuilder B;
  B.out(B.op(Op, B.input(0)));
  B.halt();
  Program P = B.finish();
  Program Lowered = lowerLibraryCalls(P);
  ASSERT_EQ(Lowered.validate(), "");
  EXPECT_GT(Lowered.size(), P.size());

  Rng R(77);
  for (int I = 0; I < 500; ++I) {
    double X = Op == Opcode::LogF64 ? R.betweenOrdinals(1e-300, 1e300)
                                    : R.uniformReal(-30.0, 30.0);
    double Got = runOne(Lowered, {X});
    double Want = Ref(X);
    // The inline kernels are "fast path" quality: a couple of ulps in
    // general, worse near the zeros of sin/cos where the 3-word Cody-Waite
    // reduction dominates. That is realistic for client code.
    EXPECT_LE(ulpsBetweenDoubles(Got, Want), 32u)
        << opInfo(Op).Name << "(" << X << ") = " << Got << " vs " << Want;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, LoweringAccuracyTest,
    ::testing::Values(std::make_pair(Opcode::ExpF64, (double (*)(double))
                                                         std::exp),
                      std::make_pair(Opcode::LogF64,
                                     (double (*)(double))std::log),
                      std::make_pair(Opcode::SinF64,
                                     (double (*)(double))std::sin),
                      std::make_pair(Opcode::CosF64,
                                     (double (*)(double))std::cos),
                      std::make_pair(Opcode::TanhF64,
                                     (double (*)(double))std::tanh)),
    [](const auto &Info) {
      std::string Name = opInfo(Info.param.first).Name;
      return Name.substr(0, Name.find('.'));
    });

TEST(LibmLowering, ControlFlowSurvivesRewriting) {
  // A loop around a lowered call: targets must be remapped correctly.
  ProgramBuilder B;
  auto I = B.constF64(0.0);
  auto Acc = B.constF64(0.0);
  auto One = B.constF64(1.0);
  auto Limit = B.constF64(10.0);
  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.branchIf(B.op(Opcode::CmpGEF64, I, Limit), Done);
  B.copyTo(Acc, B.op(Opcode::AddF64, Acc, B.op(Opcode::ExpF64, I)));
  B.copyTo(I, B.op(Opcode::AddF64, I, One));
  B.jump(Head);
  B.bind(Done);
  B.out(Acc);
  B.halt();
  Program P = B.finish();
  Program Lowered = lowerLibraryCalls(P);
  ASSERT_EQ(Lowered.validate(), "");
  double Want = runOne(P, {});
  double Got = runOne(Lowered, {});
  EXPECT_LE(ulpsBetweenDoubles(Got, Want), 64u); // accumulated kernel slop
}

TEST(LibmLowering, UnloweredOpsAreKeptWrapped) {
  EXPECT_FALSE(canLowerLibCall(Opcode::AtanF64));
  EXPECT_FALSE(canLowerLibCall(Opcode::FmodF64));
  EXPECT_TRUE(canLowerLibCall(Opcode::ExpF64));
  ProgramBuilder B;
  B.out(B.op(Opcode::AtanF64, B.input(0)));
  B.halt();
  Program P = B.finish();
  Program Lowered = lowerLibraryCalls(P);
  EXPECT_EQ(Lowered.size(), P.size());
}

TEST(LibmLowering, ExposesTheMagicRoundingConstant) {
  // The paper's Section 8.2 observes the constant 6.755399e15 leaking into
  // expressions when wrapping is off; our lowering contains it too.
  ProgramBuilder B;
  B.out(B.op(Opcode::ExpF64, B.input(0)));
  B.halt();
  Program Lowered = lowerLibraryCalls(B.finish());
  bool Found = false;
  for (const Statement &S : Lowered.statements())
    if (S.Kind == StmtKind::Const && S.Literal.Ty == ValueType::F64 &&
        S.Literal.F64 == 6755399441055744.0)
      Found = true;
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Step accounting
//===----------------------------------------------------------------------===//

TEST(IR, StepLimitStopsRunawayLoops) {
  ProgramBuilder B;
  auto Head = B.newLabel();
  B.bind(Head);
  B.jump(Head);
  Program P = B.finish();
  RunResult R = interpret(P, {}, /*MaxSteps=*/1000);
  EXPECT_TRUE(R.HitStepLimit);
  EXPECT_GE(R.Steps, 1000u);
}
