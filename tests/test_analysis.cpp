//===- tests/test_analysis.cpp - Herbgrind analysis engine tests ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// End-to-end checks of the paper's core mechanisms on the motivating
// kernels: cancellation root causes, influence flow through memory and
// calls, compensation detection, control divergence, input
// characterization, and the instrumented/uninstrumented differential.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace herbgrind;

namespace {

/// (x + 1) - x, the canonical cancellation kernel.
Program xPlusOneMinusX() {
  ProgramBuilder B;
  B.setLoc(SourceLoc("cancel.c", 3, "f"));
  auto X = B.input(0);
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  B.setLoc(SourceLoc("cancel.c", 4, "f"));
  auto Diff = B.op(Opcode::SubF64, Sum, X);
  B.out(Diff);
  B.halt();
  return B.finish();
}

/// sqrt(x*x + y*y) - x, the complex-plotter root cause (Section 3).
Program plotterKernel() {
  ProgramBuilder B;
  B.setLoc(SourceLoc("main.cpp", 24, "run(int, int)"));
  auto X = B.input(0);
  auto Y = B.input(1);
  auto XX = B.op(Opcode::MulF64, X, X);
  auto YY = B.op(Opcode::MulF64, Y, Y);
  auto Hyp = B.op(Opcode::SqrtF64, B.op(Opcode::AddF64, XX, YY));
  auto R = B.op(Opcode::SubF64, Hyp, X);
  B.out(R);
  B.halt();
  return B.finish();
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic error detection
//===----------------------------------------------------------------------===//

TEST(Analysis, AccurateProgramReportsNothing) {
  ProgramBuilder B;
  auto X = B.input(0);
  B.out(B.op(Opcode::MulF64, X, B.constF64(2.0)));
  B.halt();
  Herbgrind HG(B.finish());
  for (double V : {1.0, 3.5, -2.25, 1e100})
    HG.runOnInput({V});
  Report R = buildReport(HG);
  EXPECT_TRUE(R.Spots.empty()) << R.render();
  EXPECT_TRUE(HG.reportedRootCauses().empty());
}

TEST(Analysis, CatastrophicCancellationIsDetectedAndLocated) {
  Program P = xPlusOneMinusX();
  Herbgrind HG(P);
  HG.runOnInput({1e16});
  ASSERT_EQ(HG.lastOutputs().size(), 1u);
  EXPECT_EQ(HG.lastOutputs()[0].asF64(), 0.0); // the bug is real

  std::vector<uint32_t> Causes = HG.reportedRootCauses();
  ASSERT_FALSE(Causes.empty());
  const OpRecord &Rec = HG.opRecords().at(Causes[0]);
  EXPECT_EQ(Rec.Op, Opcode::SubF64);
  EXPECT_EQ(Rec.Loc.Line, 4);
  EXPECT_GT(Rec.MaxFlaggedLocalError, 40.0);
}

TEST(Analysis, NoErrorOnBenignInputs) {
  Program P = xPlusOneMinusX();
  Herbgrind HG(P);
  HG.runOnInput({2.0});
  HG.runOnInput({-0.5});
  EXPECT_TRUE(HG.reportedRootCauses().empty());
}

TEST(Analysis, OutputsMatchUninstrumentedInterpreter) {
  // The instrumented executor must be observationally identical.
  Program P = plotterKernel();
  Herbgrind HG(P);
  Rng R(5);
  for (int I = 0; I < 50; ++I) {
    double X = R.betweenOrdinals(1e-12, 0.25);
    double Y = R.betweenOrdinals(-1e-8, 1e-8);
    HG.runOnInput({X, Y});
    RunResult Ref = interpret(P, {X, Y});
    ASSERT_EQ(HG.lastOutputs().size(), Ref.Outputs.size());
    EXPECT_EQ(bitsOfDouble(HG.lastOutputs()[0].asF64()),
              bitsOfDouble(Ref.Outputs[0].asF64()));
  }
}

//===----------------------------------------------------------------------===//
// Symbolic expressions (the plotter root cause, Section 3)
//===----------------------------------------------------------------------===//

TEST(Analysis, PlotterRootCauseExpressionIsRecovered) {
  Program P = plotterKernel();
  Herbgrind HG(P);
  Rng R(9);
  // The paper's region: x in [0, 1/4], y tiny (near the real axis the
  // expression cancels catastrophically).
  for (int I = 0; I < 64; ++I) {
    double X = R.betweenOrdinals(1e-12, 0.25);
    double Y = R.betweenOrdinals(1e-14, 1e-8) * (R.chance(1, 2) ? 1 : -1);
    HG.runOnInput({X, Y});
  }
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.Spots.empty());
  std::vector<RootCauseReport> Causes = Rep.allRootCauses();
  ASSERT_FALSE(Causes.empty());
  // The top root cause is the subtraction, and its symbolic expression is
  // exactly the paper's fragment.
  EXPECT_EQ(Causes[0].Body, "(- (sqrt (+ (* x x) (* y y))) x)")
      << Rep.render();
  EXPECT_EQ(Causes[0].NumVars, 2u);
  EXPECT_FALSE(Causes[0].ExampleInput.empty());
}

TEST(Analysis, InputRangesAreReported) {
  Program P = plotterKernel();
  Herbgrind HG(P);
  Rng R(10);
  for (int I = 0; I < 64; ++I)
    HG.runOnInput({R.uniformReal(0.01, 0.25), R.uniformReal(-1e-9, 1e-9)});
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.allRootCauses().empty());
  std::string FPCore = Rep.allRootCauses()[0].FPCore;
  EXPECT_NE(FPCore.find(":pre"), std::string::npos) << FPCore;
  EXPECT_NE(FPCore.find("(FPCore (x y)"), std::string::npos) << FPCore;
}

TEST(Analysis, DepthOneDisablesSymbolicExpressions) {
  // Fig 5c/d: depth 1 reports only the erroneous op itself.
  Program P = plotterKernel();
  AnalysisConfig Cfg;
  Cfg.MaxExprDepth = 1;
  Herbgrind HG(P, Cfg);
  Rng R(11);
  for (int I = 0; I < 32; ++I)
    HG.runOnInput({R.uniformReal(0.01, 0.25), R.uniformReal(-1e-9, 1e-9)});
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.allRootCauses().empty());
  // Only the subtraction itself, with opaque arguments.
  EXPECT_LE(Rep.allRootCauses()[0].OpCount, 1u);
}

//===----------------------------------------------------------------------===//
// Non-local error: influence through the heap and across calls
//===----------------------------------------------------------------------===//

TEST(Analysis, InfluenceFlowsThroughMemory) {
  // Compute the erroneous value, store it, load it elsewhere, output it.
  ProgramBuilder B;
  auto X = B.input(0);
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  auto Diff = B.op(Opcode::SubF64, Sum, X);
  auto Addr = B.constI64(0x800);
  B.store(Addr, 0, Diff);
  auto Loaded = B.load(Addr, 0, ValueType::F64);
  B.out(Loaded);
  B.halt();
  Herbgrind HG(B.finish());
  HG.runOnInput({1e16});
  std::vector<uint32_t> Causes = HG.reportedRootCauses();
  ASSERT_FALSE(Causes.empty());
  EXPECT_EQ(HG.opRecords().at(Causes[0]).Op, Opcode::SubF64);
}

TEST(Analysis, InfluenceFlowsThroughThreadStateAndCalls) {
  // bar(x, y, z) = foo(mkPoint(x,y), mkPoint(x,z)) from Section 2.1,
  // flattened: the erroneous computation crosses a call boundary through
  // thread-state "argument registers".
  ProgramBuilder B;
  auto Foo = B.newLabel();
  auto X = B.input(0);
  auto Y = B.input(1);
  auto Z = B.input(2);
  // Pass a.x+a.y and b.x+b.y through thread state.
  B.put(0, B.op(Opcode::AddF64, X, Y));
  B.put(8, B.op(Opcode::AddF64, X, Z));
  B.put(16, X);
  B.call(Foo);
  B.out(B.get(24, ValueType::F64));
  B.halt();
  B.bind(Foo);
  auto A1 = B.get(0, ValueType::F64);
  auto A2 = B.get(8, ValueType::F64);
  auto AX = B.get(16, ValueType::F64);
  B.put(24, B.op(Opcode::MulF64, B.op(Opcode::SubF64, A1, A2), AX));
  B.ret();
  Herbgrind HG(B.finish());
  // x=1e16, y=1, z=0: correct result 1e16, float result 0. Run on two
  // x values so anti-unification can tell inputs from constants.
  HG.runOnInput({1e16, 1.0, 0.0});
  EXPECT_EQ(HG.lastOutputs()[0].asF64(), 0.0);
  HG.runOnInput({2e16, 1.0, 0.0});
  std::vector<uint32_t> Causes = HG.reportedRootCauses();
  ASSERT_FALSE(Causes.empty());
  const OpRecord &Top = HG.opRecords().at(Causes[0]);
  EXPECT_EQ(Top.Op, Opcode::SubF64);
  // The trace sees through the call and the thread-state traffic: the
  // root cause combines the caller's adds with the callee's subtract, and
  // both occurrences of the varying input share one variable.
  EXPECT_EQ(Top.Expr->fpcoreBody(), "(- (+ x 1) (+ x 0))");
}

//===----------------------------------------------------------------------===//
// Spots: control divergence and conversions (Section 4.2)
//===----------------------------------------------------------------------===//

TEST(Analysis, LoopBoundDivergenceIsDetected) {
  // The PID / Patriot bug: t += 0.2 until t < 10 runs 51 times, because
  // the accumulated t sits just below 10 when the real value hits it.
  ProgramBuilder B;
  auto T = B.constF64(0.0);
  auto Count = B.constF64(0.0);
  auto Step = B.constF64(0.2);
  auto One = B.constF64(1.0);
  auto Limit = B.constF64(10.0);
  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.setLoc(SourceLoc("pid.c", 17, "main"));
  auto Cond = B.op(Opcode::CmpGEF64, T, Limit);
  B.branchIf(Cond, Done);
  B.copyTo(T, B.op(Opcode::AddF64, T, Step));
  B.copyTo(Count, B.op(Opcode::AddF64, Count, One));
  B.jump(Head);
  B.bind(Done);
  B.out(Count);
  B.halt();

  AnalysisConfig Cfg;
  Cfg.LocalErrorThreshold = 0.01; // critical application: catch tiny error
  Herbgrind HG(B.finish(), Cfg);
  HG.runOnInput({});
  EXPECT_EQ(HG.lastOutputs()[0].asF64(), 51.0); // the bug: 51, not 50

  // The comparison spot diverged, influenced by the increment.
  bool FoundDivergentCompare = false;
  for (const auto &[PC, Spot] : HG.spotRecords()) {
    if (Spot.Kind == SpotKind::Comparison && Spot.Erroneous > 0) {
      FoundDivergentCompare = true;
      EXPECT_EQ(Spot.Loc.Line, 17);
      EXPECT_FALSE(Spot.InfluencingOps.empty());
      bool InfluencedByAdd = false;
      for (uint32_t OpPC : Spot.InfluencingOps)
        if (HG.opRecords().at(OpPC).Op == Opcode::AddF64)
          InfluencedByAdd = true;
      EXPECT_TRUE(InfluencedByAdd);
    }
  }
  EXPECT_TRUE(FoundDivergentCompare);
}

TEST(Analysis, FloatToIntConversionIsASpot) {
  // floor-to-int of an erroneous value crossing an integer boundary.
  ProgramBuilder B;
  auto X = B.input(0);
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  auto Diff = B.op(Opcode::SubF64, Sum, X); // 0.0, should be 1.0
  auto AsInt = B.op(Opcode::F64toI64, Diff);
  B.out(B.op(Opcode::I64toF64, AsInt));
  B.halt();
  Herbgrind HG(B.finish());
  HG.runOnInput({1e16});
  bool FoundConversionSpot = false;
  for (const auto &[PC, Spot] : HG.spotRecords())
    if (Spot.Kind == SpotKind::Conversion && Spot.Erroneous > 0)
      FoundConversionSpot = true;
  EXPECT_TRUE(FoundConversionSpot);
}

TEST(Analysis, AgreeingComparisonsAreNotErrors) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto Cond = B.op(Opcode::CmpLTF64, X, B.constF64(100.0));
  auto Done = B.newLabel();
  B.branchIf(Cond, Done);
  B.bind(Done);
  B.out(X);
  B.halt();
  Herbgrind HG(B.finish());
  HG.runOnInput({1.0});
  for (const auto &[PC, Spot] : HG.spotRecords())
    EXPECT_EQ(Spot.Erroneous, 0u);
}

//===----------------------------------------------------------------------===//
// Compensation detection (Section 5.3)
//===----------------------------------------------------------------------===//

namespace {

/// Builds the compensation scenario: an erroneous value t (flagged sub G)
/// plus a compensating-style term k (real value 0, influenced by flagged
/// sub F from a two-sum). Output t + k: with detection, only G is
/// reported; without, F leaks through too.
Program compensationProgram() {
  ProgramBuilder B;
  auto X = B.input(0); // 1e16
  auto A = B.input(1); // 1.0
  auto Bv = B.input(2); // 1e-17
  // G: t = (x + 1) - x  (flagged, error reaches the output)
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  // two-sum of (a, b): s = a + b; bv = s - a (flagged F); err = b - bv
  // (err's real value is exactly 0).
  auto S = B.op(Opcode::AddF64, A, Bv);
  auto BV = B.op(Opcode::SubF64, S, A);
  auto Err = B.op(Opcode::SubF64, Bv, BV);
  // Compensated-shaped op: out = t + err.
  auto Out = B.op(Opcode::AddF64, T, Err);
  B.out(Out);
  B.halt();
  return B.finish();
}

std::set<Opcode> causeOps(const Herbgrind &HG) {
  std::set<Opcode> Ops;
  for (uint32_t PC : HG.reportedRootCauses())
    Ops.insert(HG.opRecords().at(PC).Op);
  return Ops;
}

} // namespace

TEST(Analysis, CompensatingTermsDoNotPropagateInfluence) {
  Program P = compensationProgram();
  AnalysisConfig Cfg;
  Cfg.DetectCompensation = true;
  Herbgrind HG(P, Cfg);
  HG.runOnInput({1e16, 1.0, 1e-17});
  std::vector<uint32_t> Causes = HG.reportedRootCauses();
  ASSERT_FALSE(Causes.empty());
  // Exactly one root cause: the cancellation sub G; the two-sum's
  // compensating machinery is filtered out.
  uint64_t Compensations = 0;
  for (const auto &[PC, Rec] : HG.opRecords())
    Compensations += Rec.CompensationsDetected;
  EXPECT_GT(Compensations, 0u);
  EXPECT_EQ(Causes.size(), 1u);
}

TEST(Analysis, DisablingCompensationDetectionLeaksFalsePositives) {
  Program P = compensationProgram();
  AnalysisConfig CfgOff;
  CfgOff.DetectCompensation = false;
  Herbgrind Off(P, CfgOff);
  Off.runOnInput({1e16, 1.0, 1e-17});
  AnalysisConfig CfgOn;
  CfgOn.DetectCompensation = true;
  Herbgrind On(P, CfgOn);
  On.runOnInput({1e16, 1.0, 1e-17});
  EXPECT_GT(Off.reportedRootCauses().size(), On.reportedRootCauses().size());
}

//===----------------------------------------------------------------------===//
// Library wrapping (Section 5.3 / 8.2)
//===----------------------------------------------------------------------===//

TEST(Analysis, WrappedLibraryCallsAreAtomicInExpressions) {
  // exp(x) - 1 near x = 1e-17: the subtraction cancels catastrophically.
  ProgramBuilder B;
  auto X = B.input(0);
  auto E = B.op(Opcode::ExpF64, X);
  auto R = B.op(Opcode::SubF64, E, B.constF64(1.0));
  B.out(R);
  B.halt();
  Program P = B.finish();

  Herbgrind HG(P);
  Rng Rand(21);
  for (int I = 0; I < 32; ++I)
    HG.runOnInput({Rand.betweenOrdinals(1e-20, 1e-15)});
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.allRootCauses().empty());
  EXPECT_EQ(Rep.allRootCauses()[0].Body, "(- (exp x) 1)");
  EXPECT_LE(Rep.allRootCauses()[0].OpCount, 2u);
}

TEST(Analysis, UnwrappedLibraryCallsLeakInternals) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto E = B.op(Opcode::ExpF64, X);
  auto R = B.op(Opcode::SubF64, E, B.constF64(1.0));
  B.out(R);
  B.halt();
  Program P = B.finish();

  AnalysisConfig Cfg;
  Cfg.WrapLibraryCalls = false;
  Herbgrind HG(P, Cfg);
  Rng Rand(22);
  for (int I = 0; I < 32; ++I)
    HG.runOnInput({Rand.betweenOrdinals(1e-20, 1e-15)});
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.allRootCauses().empty());
  // Internals leak: much bigger expressions, containing libm's magic
  // rounding constant rather than a clean (exp x).
  unsigned MaxOps = 0;
  for (const RootCauseReport &RC : Rep.allRootCauses())
    MaxOps = std::max(MaxOps, RC.OpCount);
  EXPECT_GT(MaxOps, 9u);
}

//===----------------------------------------------------------------------===//
// SIMD and bit-trick shadowing
//===----------------------------------------------------------------------===//

TEST(Analysis, SimdLanesAreShadowedIndependently) {
  // Lane 0 computes the cancellation bug; lane 1 is benign.
  ProgramBuilder B;
  auto X = B.input(0);
  auto VX = B.op(Opcode::BuildV2F64, X, B.constF64(2.0));
  auto One = B.op(Opcode::BuildV2F64, B.constF64(1.0), B.constF64(3.0));
  auto Sum = B.op(Opcode::AddV2F64, VX, One);
  auto Diff = B.op(Opcode::SubV2F64, Sum, VX);
  B.out(B.op(Opcode::ExtractLaneF64, Diff, B.constI64(0)));
  B.out(B.op(Opcode::ExtractLaneF64, Diff, B.constI64(1)));
  B.halt();
  Herbgrind HG(B.finish());
  HG.runOnInput({1e16});
  // Lane 0's output is wrong (0 instead of 1); lane 1's is exact (3).
  EXPECT_EQ(HG.lastOutputs()[0].asF64(), 0.0);
  EXPECT_EQ(HG.lastOutputs()[1].asF64(), 3.0);
  ASSERT_FALSE(HG.reportedRootCauses().empty());
}

TEST(Analysis, XorSignFlipIsShadowedAsNegation) {
  ProgramBuilder B;
  double SignMaskD = doubleFromBits(1ULL << 63);
  auto X = B.input(0);
  auto V = B.op(Opcode::BuildV2F64, X, X);
  auto Mask = B.op(Opcode::BuildV2F64, B.constF64(SignMaskD),
                   B.constF64(SignMaskD));
  auto Neg = B.op(Opcode::XorV128, V, Mask);
  auto Lane = B.op(Opcode::ExtractLaneF64, Neg, B.constI64(0));
  // Then cancel: (-x + x) + 1 ... use the negated value so its trace must
  // have survived the bit trick for the root cause to mention it.
  auto Zero = B.op(Opcode::AddF64, Lane, X);
  auto Bad = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)),
                  X);
  B.out(B.op(Opcode::AddF64, Zero, Bad));
  B.halt();
  Herbgrind HG(B.finish());
  HG.runOnInput({1e16});
  // The negation op must appear in some record (it was shadowed, not
  // dropped).
  bool SawNeg = false;
  for (const auto &[PC, Rec] : HG.opRecords())
    if (Rec.Op == Opcode::NegF64)
      SawNeg = true;
  EXPECT_TRUE(SawNeg);
}

//===----------------------------------------------------------------------===//
// Input characteristics (Section 4.4)
//===----------------------------------------------------------------------===//

TEST(Analysis, ProblematicInputsAreNarrowerThanTotal) {
  // baz-like kernel: error only when x is near 113.
  ProgramBuilder B;
  auto X = B.input(0);
  auto Z = B.op(Opcode::DivF64, B.constF64(1.0),
                B.op(Opcode::SubF64, X, B.constF64(113.0)));
  auto R = B.op(Opcode::SubF64, B.op(Opcode::AddF64, Z, B.constF64(M_PI)),
                Z);
  B.out(R);
  B.halt();
  Herbgrind HG(B.finish());
  Rng Rand(33);
  for (int I = 0; I < 100; ++I)
    HG.runOnInput({Rand.uniformReal(0.0, 100.0)}); // far from 113: fine
  for (int I = 0; I < 10; ++I)
    HG.runOnInput({113.0 + Rand.uniformReal(-1e-9, 1e-9)}); // catastrophic

  // The flagged record is the final subtraction; its symbolic expression
  // reaches down to the program input x, so the variable *is* x.
  const OpRecord *Flagged = nullptr;
  for (const auto &[PC, Rec] : HG.opRecords())
    if (Rec.Flagged > 0 && Rec.TotalInputs.Vars.size() > 0)
      Flagged = &Rec;
  ASSERT_NE(Flagged, nullptr);
  ASSERT_TRUE(Flagged->Expr);
  EXPECT_NE(Flagged->Expr->fpcoreBody().find("(- x 113)"),
            std::string::npos);
  // The paper's point: the total range covers everything baz was called
  // on, while the problematic range pins x to the neighborhood of 113.
  const VarSummary &Total = Flagged->TotalInputs.Vars[0];
  const VarSummary &Prob = Flagged->ProblematicInputs.Vars[0];
  EXPECT_GT(Prob.Count, 0u);
  EXPECT_LT(Prob.Count, Total.Count);
  EXPECT_LT(Total.Lo, 100.0);
  EXPECT_GT(Prob.Lo, 112.9);
  EXPECT_LT(Prob.Hi, 113.1);
}

TEST(Analysis, RangeModesAffectPreconditions) {
  Program P = plotterKernel();
  for (RangeMode Mode :
       {RangeMode::Off, RangeMode::Single, RangeMode::SignSplit}) {
    AnalysisConfig Cfg;
    Cfg.Ranges = Mode;
    Herbgrind HG(P, Cfg);
    Rng Rand(44);
    for (int I = 0; I < 32; ++I)
      HG.runOnInput(
          {Rand.uniformReal(0.01, 0.25), Rand.uniformReal(-1e-9, 1e-9)});
    Report Rep = buildReport(HG);
    std::vector<RootCauseReport> Causes = Rep.allRootCauses();
    ASSERT_FALSE(Causes.empty());
    const std::string &FPCore = Causes[0].FPCore;
    if (Mode == RangeMode::Off)
      EXPECT_EQ(FPCore.find(":pre"), std::string::npos);
    else
      EXPECT_NE(FPCore.find(":pre"), std::string::npos);
    if (Mode == RangeMode::SignSplit)
      EXPECT_NE(FPCore.find("(or "), std::string::npos) << FPCore;
  }
}

//===----------------------------------------------------------------------===//
// NaN detection (the Gram-Schmidt case, Section 7)
//===----------------------------------------------------------------------===//

TEST(Analysis, NaNFromRankDeficiencyIsMaximalError) {
  // v2 = 2*v1; after projection v2' is exactly 0 in the reals but rounding
  // garbage in floats; normalizing divides real 0 by real 0 => real NaN vs
  // finite float garbage, i.e. 64 bits of error at the output.
  ProgramBuilder B;
  auto V1x = B.input(0);
  auto V1y = B.input(1);
  auto Two = B.constF64(2.0);
  auto Eps = B.constF64(1e-17);
  // v2 = 2*v1 perturbed so the float dot products round.
  auto V2x = B.op(Opcode::MulF64, V1x, B.op(Opcode::AddF64, Two, Eps));
  auto V2y = B.op(Opcode::MulF64, V1y, B.op(Opcode::AddF64, Two, Eps));
  // proj = (v2 . v1) / (v1 . v1)
  auto Dot21 = B.op(Opcode::AddF64, B.op(Opcode::MulF64, V2x, V1x),
                    B.op(Opcode::MulF64, V2y, V1y));
  auto Dot11 = B.op(Opcode::AddF64, B.op(Opcode::MulF64, V1x, V1x),
                    B.op(Opcode::MulF64, V1y, V1y));
  auto Proj = B.op(Opcode::DivF64, Dot21, Dot11);
  // v2' = v2 - proj*v1 (exactly zero in the reals)
  auto Wx = B.op(Opcode::SubF64, V2x, B.op(Opcode::MulF64, Proj, V1x));
  auto Wy = B.op(Opcode::SubF64, V2y, B.op(Opcode::MulF64, Proj, V1y));
  // normalize: q = w / ||w||
  auto Norm = B.op(Opcode::SqrtF64,
                   B.op(Opcode::AddF64, B.op(Opcode::MulF64, Wx, Wx),
                        B.op(Opcode::MulF64, Wy, Wy)));
  B.out(B.op(Opcode::DivF64, Wx, Norm));
  B.halt();

  Herbgrind HG(B.finish());
  HG.runOnInput({0.3, 0.7});
  Report Rep = buildReport(HG);
  ASSERT_FALSE(Rep.Spots.empty()) << "expected an erroneous output spot";
  EXPECT_GE(Rep.Spots[0].MaxErrorBits, 63.0);
  EXPECT_FALSE(Rep.Spots[0].RootCauses.empty());
}

//===----------------------------------------------------------------------===//
// Optimization toggles keep results identical
//===----------------------------------------------------------------------===//

TEST(Analysis, OptimizationTogglesPreserveResults) {
  Program P = plotterKernel();
  auto RunWith = [&](bool TypeAnalysis, bool Share, bool Pools) {
    AnalysisConfig Cfg;
    Cfg.UseTypeAnalysis = TypeAnalysis;
    Cfg.SharedShadowValues = Share;
    Cfg.UsePools = Pools;
    Herbgrind HG(P, Cfg);
    Rng Rand(55);
    for (int I = 0; I < 16; ++I)
      HG.runOnInput(
          {Rand.uniformReal(0.01, 0.25), Rand.uniformReal(-1e-9, 1e-9)});
    Report Rep = buildReport(HG);
    return Rep.render();
  };
  std::string Baseline = RunWith(true, true, true);
  EXPECT_EQ(RunWith(false, true, true), Baseline);
  EXPECT_EQ(RunWith(true, false, true), Baseline);
  EXPECT_EQ(RunWith(true, true, false), Baseline);
  EXPECT_EQ(RunWith(false, false, false), Baseline);
}

TEST(Analysis, StatsAreCollected) {
  Program P = plotterKernel();
  Herbgrind HG(P);
  HG.runOnInput({0.1, 1e-9});
  AnalysisStats St = HG.stats();
  EXPECT_GT(St.InstrumentedSteps, 0u);
  EXPECT_GT(St.ShadowOpsExecuted, 0u);
  EXPECT_GT(St.TraceNodesAllocated, 0u);
  EXPECT_GT(St.ShadowValuesAllocated, 0u);
}

TEST(Analysis, ReportRendersPaperStyle) {
  Program P = plotterKernel();
  Herbgrind HG(P);
  Rng Rand(66);
  for (int I = 0; I < 32; ++I)
    HG.runOnInput(
        {Rand.uniformReal(0.01, 0.25), Rand.uniformReal(-1e-9, 1e-9)});
  std::string Text = buildReport(HG).render();
  EXPECT_NE(Text.find("Output @ main.cpp:24 in run(int, int)"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("Influenced by erroneous expressions:"),
            std::string::npos);
  EXPECT_NE(Text.find("(FPCore (x y)"), std::string::npos);
  EXPECT_NE(Text.find("Example problematic input:"), std::string::npos);
}
