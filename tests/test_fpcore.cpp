//===- tests/test_fpcore.cpp - FPCore frontend tests ----------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "fpcore/Eval.h"
#include "fpcore/FPCore.h"

#include "ir/Interpreter.h"
#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace herbgrind;
using namespace herbgrind::fpcore;

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(FPCoreParse, SimpleCore) {
  ParseResult R = parse("(FPCore (x) :name \"t\" (- (sqrt (+ x 1)) "
                        "(sqrt x)))");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.Name, "t");
  ASSERT_EQ(R.Value.Params.size(), 1u);
  EXPECT_EQ(R.Value.Params[0], "x");
  EXPECT_EQ(R.Value.Body->print(), "(- (sqrt (+ x 1)) (sqrt x))");
}

TEST(FPCoreParse, Preconditions) {
  ParseResult R =
      parse("(FPCore (x y) :pre (and (<= 0 x 1) (< -2 y)) (+ x y))");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Value.Pre);
  EXPECT_EQ(R.Value.Pre->print(), "(and (<= 0 x 1) (< -2 y))");
}

TEST(FPCoreParse, NumbersRationalsConstants) {
  std::string Err;
  EXPECT_EQ(parseExpr("1.5e3", Err)->Num, 1500.0);
  EXPECT_EQ(parseExpr("1/4", Err)->Num, 0.25);
  EXPECT_EQ(parseExpr("-3", Err)->Num, -3.0);
  ExprPtr Pi = parseExpr("PI", Err);
  EXPECT_EQ(Pi->K, Expr::Kind::Const);
}

TEST(FPCoreParse, LetAndWhile) {
  ParseResult R = parse("(FPCore (n) (while (< i n) ([s 0 (+ s i)] "
                        "[i 0 (+ i 1)]) s))");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.Body->K, Expr::Kind::While);
  EXPECT_EQ(R.Value.Body->Binds.size(), 2u);
}

TEST(FPCoreParse, Comments) {
  ParseResult R = parse("(FPCore (x) ; a comment\n (+ x 1))");
  ASSERT_TRUE(R.Ok) << R.Error;
}

TEST(FPCoreParse, ErrorsAreReported) {
  EXPECT_FALSE(parse("(FPCore (x) (+ x 1").Ok);
  EXPECT_FALSE(parse("(NotFPCore (x) 1)").Ok);
  EXPECT_FALSE(parse("").Ok);
}

TEST(FPCoreParse, PrintRoundTrips) {
  for (const Core &C : corpus()) {
    ParseResult R = parse(C.print());
    ASSERT_TRUE(R.Ok) << C.Name << ": " << R.Error;
    EXPECT_EQ(R.Value.Body->print(), C.Body->print()) << C.Name;
  }
}

//===----------------------------------------------------------------------===//
// Ranges
//===----------------------------------------------------------------------===//

TEST(FPCoreRanges, ExtractsChainedBounds) {
  ParseResult R = parse("(FPCore (x y) :pre (and (<= 0 x 1) (<= -5 y 5)) "
                        "(+ x y))");
  ASSERT_TRUE(R.Ok);
  std::vector<VarRange> Ranges = sampleRanges(R.Value);
  ASSERT_EQ(Ranges.size(), 2u);
  EXPECT_EQ(Ranges[0].Lo, 0.0);
  EXPECT_EQ(Ranges[0].Hi, 1.0);
  EXPECT_EQ(Ranges[1].Lo, -5.0);
  EXPECT_EQ(Ranges[1].Hi, 5.0);
}

TEST(FPCoreRanges, DefaultsWhenUnconstrained) {
  ParseResult R = parse("(FPCore (x) (+ x 1))");
  ASSERT_TRUE(R.Ok);
  std::vector<VarRange> Ranges = sampleRanges(R.Value);
  EXPECT_LT(Ranges[0].Lo, 0.0);
  EXPECT_GT(Ranges[0].Hi, 0.0);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

TEST(FPCoreEval, DoubleMatchesHandComputation) {
  std::string Err;
  ExprPtr E = parseExpr("(- (sqrt (+ x 1)) (sqrt x))", Err);
  ASSERT_TRUE(E) << Err;
  double X = 1e10;
  EXPECT_EQ(evalDouble(*E, {{"x", X}}),
            std::sqrt(X + 1) - std::sqrt(X));
}

TEST(FPCoreEval, RealIsMoreAccurate) {
  std::string Err;
  ExprPtr E = parseExpr("(- (+ x 1) x)", Err);
  double X = 1e16;
  EXPECT_EQ(evalDouble(*E, {{"x", X}}), 0.0);
  BigFloat R = evalReal(*E, {{"x", BigFloat::fromDouble(X)}});
  EXPECT_EQ(R.toDouble(), 1.0);
}

TEST(FPCoreEval, PointErrorBitsSeesCancellation) {
  std::string Err;
  ExprPtr E = parseExpr("(- (+ x 1) x)", Err);
  EXPECT_GT(pointErrorBits(*E, {{"x", 1e16}}), 40.0);
  EXPECT_EQ(pointErrorBits(*E, {{"x", 2.0}}), 0.0);
}

TEST(FPCoreEval, WhileLoops) {
  std::string Err;
  ExprPtr E =
      parseExpr("(while (<= i n) ([s 0 (+ s i)] [i 1 (+ i 1)]) s)", Err);
  ASSERT_TRUE(E) << Err;
  EXPECT_EQ(evalDouble(*E, {{"n", 100.0}}), 5050.0);
  BigFloat R = evalReal(*E, {{"n", BigFloat::fromDouble(100.0)}});
  EXPECT_EQ(R.toDouble(), 5050.0);
}

TEST(FPCoreEval, IfSelectsBranches) {
  std::string Err;
  ExprPtr E = parseExpr("(if (< x 0) (- x) x)", Err);
  EXPECT_EQ(evalDouble(*E, {{"x", -3.0}}), 3.0);
  EXPECT_EQ(evalDouble(*E, {{"x", 5.0}}), 5.0);
}

//===----------------------------------------------------------------------===//
// Compilation: differential against direct evaluation
//===----------------------------------------------------------------------===//

TEST(FPCoreCompile, StraightLineDifferential) {
  Rng R(123);
  for (const Core &C : corpus()) {
    std::string WhyNot;
    ASSERT_TRUE(isCompilable(C, &WhyNot)) << C.Name << ": " << WhyNot;
    Program P = compile(C);
    ASSERT_EQ(P.validate(), "") << C.Name;
    std::vector<VarRange> Ranges = sampleRanges(C);
    for (int Trial = 0; Trial < 5; ++Trial) {
      std::vector<double> Inputs;
      DoubleEnv Env;
      for (size_t I = 0; I < C.Params.size(); ++I) {
        double V = R.uniformReal(Ranges[I].Lo, Ranges[I].Hi);
        Inputs.push_back(V);
        Env[C.Params[I]] = V;
      }
      RunResult Run = interpret(P, Inputs, 10'000'000);
      ASSERT_EQ(Run.Outputs.size(), 1u) << C.Name;
      double Direct = evalDouble(*C.Body, Env);
      double Compiled = Run.Outputs[0].asF64();
      if (std::isnan(Direct)) {
        EXPECT_TRUE(std::isnan(Compiled)) << C.Name;
      } else {
        EXPECT_EQ(bitsOfDouble(Compiled), bitsOfDouble(Direct))
            << C.Name << " inputs ";
      }
    }
  }
}

TEST(FPCoreCompile, LoopBenchmarkCompiles) {
  ParseResult R = parse("(FPCore (n) (while (< t n) ([t 0 (+ t 0.1)] "
                        "[c 0 (+ c 1)]) c))");
  ASSERT_TRUE(R.Ok);
  Program P = compile(R.Value);
  RunResult Run = interpret(P, {10.0});
  EXPECT_EQ(Run.Outputs[0].asF64(), evalDouble(*R.Value.Body, {{"n", 10.0}}));
}

TEST(FPCoreCompile, SourceLocationsNameTheBenchmark) {
  ParseResult R = parse("(FPCore (x) :name \"demo\" (+ x 1))");
  ASSERT_TRUE(R.Ok);
  Program P = compile(R.Value);
  bool Found = false;
  for (const Statement &S : P.statements())
    if (S.Loc.File == "demo.fpcore")
      Found = true;
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Corpus hygiene
//===----------------------------------------------------------------------===//

TEST(Corpus, HasAtLeast86Benchmarks) {
  EXPECT_GE(corpus().size(), 86u);
}

TEST(Corpus, AllNamesAreUnique) {
  std::set<std::string> Names;
  for (const Core &C : corpus()) {
    EXPECT_FALSE(C.Name.empty());
    EXPECT_TRUE(Names.insert(C.Name).second) << "duplicate: " << C.Name;
  }
}

TEST(Corpus, AllEntriesHavePreconditions) {
  for (const Core &C : corpus())
    EXPECT_TRUE(C.Pre != nullptr) << C.Name;
}

TEST(Corpus, ParamsMatchFreeVariables) {
  for (const Core &C : corpus()) {
    std::vector<std::string> Free;
    C.Body->freeVars(Free);
    for (const std::string &V : Free)
      EXPECT_NE(std::find(C.Params.begin(), C.Params.end(), V),
                C.Params.end())
          << C.Name << " uses unbound " << V;
  }
}
