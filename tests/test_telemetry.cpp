//===- tests/test_telemetry.cpp - Metrics, tracing, op profiler -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract: (1) the metrics registry merges
// counters, gauges, and timer histograms across threads, including
// threads that exited before the snapshot; (2) trace spans record real
// intervals and render as Chrome trace-event JSON that parses; (3) the op
// profiler attributes shadow cost to (SourceLoc, opcode) sites, survives
// clone/merge, and at sample period 1 its rows account for the full
// measured total; (4) the telemetry document round-trips through the
// serializer and rejects unknown major versions; (5) ThreadPool counts
// submissions, executions, and steals; and -- the load-bearing clause --
// (6) enabling every piece of telemetry at once leaves the engine's
// report bytes identical.
//
//===----------------------------------------------------------------------===//

#include "analysis/OpProfile.h"
#include "engine/Engine.h"
#include "engine/ThreadPool.h"
#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

using namespace herbgrind;
using namespace herbgrind::engine;

namespace {

std::vector<fpcore::Core> smallCorpusSubset(size_t MaxBenchmarks) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= MaxBenchmarks)
      break;
  }
  return Cores;
}

/// Every test begins from a clean registry; the suites share a process.
struct TelemetryTest : ::testing::Test {
  void SetUp() override {
    metrics::resetAll();
    trace::stop();
    trace::clear();
    opprof::disable();
  }
  void TearDown() override {
    opprof::disable();
    trace::stop();
    trace::clear();
    metrics::resetAll();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, CountersMergeAcrossThreadsIncludingExitedOnes) {
  metrics::Counter C = metrics::counter("test.counter_merge");
  C.add();        // this thread
  C.add(41);      // this thread again
  // Two short-lived threads: their slabs retire before the snapshot and
  // must still be counted.
  std::thread A([&] { C.add(100); });
  std::thread B([&] { metrics::counter("test.counter_merge").add(1000); });
  A.join();
  B.join();
  EXPECT_EQ(metrics::snapshot().counterValue("test.counter_merge"), 1142u);

  // Registration is idempotent: the same name is the same cell.
  metrics::counter("test.counter_merge").add(8);
  EXPECT_EQ(metrics::snapshot().counterValue("test.counter_merge"), 1150u);

  // Missing names read as zero rather than erroring.
  EXPECT_EQ(metrics::snapshot().counterValue("test.never_registered"), 0u);
}

TEST_F(TelemetryTest, GaugesTrackLevelAndHighWatermark) {
  metrics::Gauge G = metrics::gauge("test.gauge");
  G.set(5);
  G.add(7); // 12: the high watermark
  G.sub(9); // 3: the final level
  metrics::Snapshot S = metrics::snapshot();
  const metrics::GaugeSample *GS = S.findGauge("test.gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, 3);
  EXPECT_EQ(GS->Max, 12);
  EXPECT_EQ(S.findGauge("test.no_such_gauge"), nullptr);
}

TEST_F(TelemetryTest, TimersHistogramCountSumMaxAndBuckets) {
  metrics::Timer T = metrics::timer("test.timer");
  T.record(1);    // bucket 0
  T.record(9);    // floor(log2 9) = 3
  T.record(1000); // floor(log2 1000) = 9
  metrics::Snapshot S = metrics::snapshot();
  const metrics::TimerSample *TS = S.findTimer("test.timer");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 3u);
  EXPECT_EQ(TS->SumNanos, 1010u);
  EXPECT_EQ(TS->MaxNanos, 1000u);
  EXPECT_EQ(TS->Buckets[0], 1u);
  EXPECT_EQ(TS->Buckets[3], 1u);
  EXPECT_EQ(TS->Buckets[9], 1u);
  uint64_t Total = 0;
  for (uint64_t B : TS->Buckets)
    Total += B;
  EXPECT_EQ(Total, 3u);
}

TEST_F(TelemetryTest, TimerMaxSurvivesThreadExitAsMaxNotSum) {
  // The subtle retirement case: max cells from exited threads must fold
  // by max. Two exited threads recording 100 and 60 must yield max 100,
  // not 160, and a live-thread 30 must not disturb it.
  metrics::Timer T = metrics::timer("test.timer_retire");
  std::thread A([&] { T.record(100); });
  A.join();
  std::thread B([&] { T.record(60); });
  B.join();
  T.record(30);
  const metrics::Snapshot S = metrics::snapshot();
  const metrics::TimerSample *TS = S.findTimer("test.timer_retire");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 3u);
  EXPECT_EQ(TS->SumNanos, 190u);
  EXPECT_EQ(TS->MaxNanos, 100u);
}

TEST_F(TelemetryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  metrics::Counter C = metrics::counter("test.reset");
  C.add(5);
  metrics::gauge("test.reset_gauge").set(9);
  metrics::resetAll();
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(S.counterValue("test.reset"), 0u);
  const metrics::GaugeSample *GS = S.findGauge("test.reset_gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, 0);
  EXPECT_EQ(GS->Max, 0);
  // The old handle still works after the reset.
  C.add(2);
  EXPECT_EQ(metrics::snapshot().counterValue("test.reset"), 2u);
}

TEST_F(TelemetryTest, SnapshotIsNameSorted) {
  metrics::counter("test.zz").add(1);
  metrics::counter("test.aa").add(1);
  metrics::Snapshot S = metrics::snapshot();
  for (size_t I = 1; I < S.Counters.size(); ++I)
    EXPECT_LT(S.Counters[I - 1].Name, S.Counters[I].Name);
}

//===----------------------------------------------------------------------===//
// Trace spans
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SpansRecordOnlyWhileEnabled) {
  { trace::Span S("telemetry.test.before", "test"); }
  EXPECT_TRUE(trace::collect().empty());

  trace::start();
  EXPECT_TRUE(trace::enabled());
  { trace::Span S("telemetry.test.during", "test", "{\"k\":1}"); }
  trace::stop();
  EXPECT_FALSE(trace::enabled());
  { trace::Span S("telemetry.test.after", "test"); }

  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "telemetry.test.during");
  EXPECT_STREQ(Events[0].Cat, "test");
  EXPECT_EQ(Events[0].Args, "{\"k\":1}");
}

TEST_F(TelemetryTest, SpansFromExitedThreadsSurviveAndSortByStart) {
  trace::start();
  {
    trace::Span Outer("telemetry.test.outer", "test");
    std::thread T([] { trace::Span Inner("telemetry.test.inner", "test"); });
    T.join();
  }
  trace::stop();
  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 2u);
  // collect() sorts by start time: the outer span opened first but closed
  // last, so ordering by start puts it first -- and its interval encloses
  // the inner one.
  EXPECT_EQ(Events[0].Name, "telemetry.test.outer");
  EXPECT_EQ(Events[1].Name, "telemetry.test.inner");
  EXPECT_LE(Events[0].StartNanos, Events[1].StartNanos);
  EXPECT_GE(Events[0].StartNanos + Events[0].DurNanos,
            Events[1].StartNanos + Events[1].DurNanos);
  EXPECT_NE(Events[0].Tid, Events[1].Tid);
}

TEST_F(TelemetryTest, ChromeTraceJsonParsesWithExpectedShape) {
  trace::start();
  { trace::Span S("telemetry.test.json", "test", "{\"shard\":3}"); }
  trace::stop();
  std::string Json = trace::renderChromeTrace();

  JsonParseResult R = parseJson(Json);
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue &Root = R.Value;
  ASSERT_TRUE(Root.isObject());
  const JsonValue *EventsV = Root.field("traceEvents");
  ASSERT_NE(EventsV, nullptr);
  ASSERT_TRUE(EventsV->isArray());
  bool Found = false;
  for (const JsonValue &Ev : EventsV->Arr) {
    const JsonValue *Name = Ev.field("name");
    if (!Name || Name->Str != "telemetry.test.json")
      continue;
    Found = true;
    ASSERT_NE(Ev.field("ph"), nullptr);
    EXPECT_EQ(Ev.field("ph")->Str, "X");
    EXPECT_EQ(Ev.field("cat")->Str, "test");
    ASSERT_NE(Ev.field("ts"), nullptr);
    ASSERT_NE(Ev.field("dur"), nullptr);
    const JsonValue *Args = Ev.field("args");
    ASSERT_NE(Args, nullptr);
    ASSERT_TRUE(Args->isObject());
    ASSERT_NE(Args->field("shard"), nullptr);
    EXPECT_EQ(Args->field("shard")->asU64(), 3u);
  }
  EXPECT_TRUE(Found);
  const JsonValue *Unit = Root.field("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->Str, "ns");
}

//===----------------------------------------------------------------------===//
// The op profiler
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, ProfilerAttributesCostToOpRecordsWhenEnabled) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  B.out(T);
  B.halt();
  Program P = B.finish();

  // Disabled (the default): no cost recorded anywhere.
  {
    Herbgrind HG(P);
    HG.runOnInput({1e15});
    for (const auto &[PC, Rec] : HG.opRecords()) {
      EXPECT_EQ(Rec.ProfSamples, 0u) << "pc " << PC;
      EXPECT_EQ(Rec.ProfNanos, 0u) << "pc " << PC;
    }
  }
  EXPECT_EQ(metrics::snapshot().counterValue("profile.shadow_ops_measured"),
            0u);

  // Enabled at period 1: every shadow-op execution is measured.
  opprof::enable(1);
  Herbgrind HG(P);
  HG.runOnInput({1e15});
  HG.runOnInput({2.5});
  opprof::disable();

  uint64_t TotalSamples = 0, TotalNanos = 0;
  for (const auto &[PC, Rec] : HG.opRecords()) {
    EXPECT_EQ(Rec.ProfSamples, Rec.Executions) << "pc " << PC;
    EXPECT_GT(Rec.ProfNanos, 0u) << "pc " << PC;
    TotalSamples += Rec.ProfSamples;
    TotalNanos += Rec.ProfNanos;
  }
  EXPECT_EQ(TotalSamples, 4u); // 2 ops x 2 runs

  // The global counters agree with the per-record sums: that is the >=90%
  // acceptance property -- at period 1 attribution is exact (100%).
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(S.counterValue("profile.shadow_ops_measured"), TotalSamples);
  EXPECT_EQ(S.counterValue("profile.shadow_ns"), TotalNanos);
}

TEST_F(TelemetryTest, ProfilerSamplePeriodSkipsExecutions) {
  ProgramBuilder B;
  auto X = B.input(0);
  B.out(B.op(Opcode::AddF64, X, B.constF64(1.0)));
  B.halt();
  Program P = B.finish();

  opprof::enable(4);
  EXPECT_EQ(opprof::samplePeriod(), 4u);
  Herbgrind HG(P);
  for (int I = 0; I < 8; ++I)
    HG.runOnInput({static_cast<double>(I)});
  opprof::disable();
  EXPECT_EQ(opprof::samplePeriod(), 0u);

  uint64_t Samples = 0, Executions = 0;
  for (const auto &[PC, Rec] : HG.opRecords()) {
    Samples += Rec.ProfSamples;
    Executions += Rec.Executions;
  }
  EXPECT_EQ(Executions, 8u);
  EXPECT_EQ(Samples, 2u); // every 4th execution on this thread
}

TEST_F(TelemetryTest, ProfileFieldsSurviveCloneAndSumOnMerge) {
  // Executed records must carry expressions for mergeFrom; a constant
  // leaf is the smallest well-formed one.
  OpRecord A;
  A.Op = Opcode::MulF64;
  A.Loc = SourceLoc("a.cpp", 10, "f");
  A.Executions = 6;
  A.Expr = SymExpr::makeConst(2.0);
  A.ProfSamples = 3;
  A.ProfNanos = 300;
  A.ProfLimbAllocs = 2;
  A.ProfLimbHits = 7;

  OpRecord C = A.clone();
  EXPECT_EQ(C.ProfSamples, 3u);
  EXPECT_EQ(C.ProfNanos, 300u);
  EXPECT_EQ(C.ProfLimbAllocs, 2u);
  EXPECT_EQ(C.ProfLimbHits, 7u);

  OpRecord B;
  B.Op = Opcode::MulF64;
  B.Loc = A.Loc;
  B.Executions = 4;
  B.Expr = SymExpr::makeConst(2.0);
  B.ProfSamples = 1;
  B.ProfNanos = 50;
  B.ProfLimbAllocs = 1;
  B.ProfLimbHits = 2;
  A.mergeFrom(B, 3);
  EXPECT_EQ(A.ProfSamples, 4u);
  EXPECT_EQ(A.ProfNanos, 350u);
  EXPECT_EQ(A.ProfLimbAllocs, 3u);
  EXPECT_EQ(A.ProfLimbHits, 9u);
}

TEST_F(TelemetryTest, ProfileRowsMergeBySiteRankAndExtrapolate) {
  std::map<uint32_t, OpRecord> Ops;
  // Two PCs at the same (Loc, Op) site must merge into one row.
  OpRecord &R1 = Ops[1];
  R1.Op = Opcode::AddF64;
  R1.Loc = SourceLoc("k.cpp", 5, "hot");
  R1.Executions = 10;
  R1.ProfSamples = 5;
  R1.ProfNanos = 500;
  OpRecord &R2 = Ops[2];
  R2.Op = Opcode::AddF64;
  R2.Loc = SourceLoc("k.cpp", 5, "hot");
  R2.Executions = 10;
  R2.ProfSamples = 5;
  R2.ProfNanos = 300;
  // A cheaper site at another line.
  OpRecord &R3 = Ops[3];
  R3.Op = Opcode::SqrtF64;
  R3.Loc = SourceLoc("k.cpp", 9, "cold");
  R3.Executions = 4;
  R3.ProfSamples = 2;
  R3.ProfNanos = 100;
  // A record the analysis saw but never executed contributes nothing.
  OpRecord &R4 = Ops[4];
  R4.Op = Opcode::DivF64;
  R4.Executions = 0;

  std::vector<opprof::OpProfileRow> Rows;
  opprof::accumulateOpProfile(Ops, Rows);
  opprof::finalizeOpProfile(Rows);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Loc.Line, 5);
  EXPECT_EQ(Rows[0].Executions, 20u);
  EXPECT_EQ(Rows[0].Samples, 10u);
  EXPECT_EQ(Rows[0].Nanos, 800u);
  // 800 ns over 10 of 20 executions extrapolates to 1600.
  EXPECT_DOUBLE_EQ(Rows[0].estNanos(), 1600.0);
  EXPECT_EQ(Rows[1].Loc.Line, 9);
  EXPECT_DOUBLE_EQ(Rows[1].estNanos(), 200.0);

  std::string Table = opprof::renderOpProfileTable(Rows, 10, 900);
  EXPECT_NE(Table.find("add.f64"), std::string::npos);
  EXPECT_NE(Table.find("sqrt.f64"), std::string::npos);
  EXPECT_NE(Table.find("k.cpp:5 in hot"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The telemetry document
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, TelemetryDocRoundTripsByteIdentically) {
  metrics::counter("test.doc_counter").add(42);
  metrics::gauge("test.doc_gauge").set(-3);
  metrics::timer("test.doc_timer").record(1024);

  TelemetryDoc Doc;
  Doc.Metrics = metrics::snapshot();
  opprof::OpProfileRow Row;
  Row.Op = Opcode::AddF64;
  Row.Loc = SourceLoc("q.fpcore", 3, "quad");
  Row.Executions = 100;
  Row.Samples = 25;
  Row.Nanos = 12345;
  Row.LimbAllocs = 6;
  Row.LimbHits = 9;
  Doc.Profile.push_back(Row);
  Doc.ProfileTotalNanos = 12345;

  std::string Json = renderTelemetryJson(Doc);
  TelemetryDoc Back;
  std::string Err;
  ASSERT_TRUE(parseTelemetryJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.Metrics.counterValue("test.doc_counter"), 42u);
  const metrics::GaugeSample *GS = Back.Metrics.findGauge("test.doc_gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, -3);
  const metrics::TimerSample *TS = Back.Metrics.findTimer("test.doc_timer");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 1u);
  EXPECT_EQ(TS->SumNanos, 1024u);
  EXPECT_EQ(TS->Buckets[10], 1u);
  ASSERT_EQ(Back.Profile.size(), 1u);
  EXPECT_EQ(Back.Profile[0].Op, Opcode::AddF64);
  EXPECT_EQ(Back.Profile[0].Loc.str(), "q.fpcore:3 in quad");
  EXPECT_EQ(Back.Profile[0].Samples, 25u);
  EXPECT_EQ(Back.ProfileTotalNanos, 12345u);

  // parse(render(x)) re-renders byte-identically.
  EXPECT_EQ(renderTelemetryJson(Back), Json);
}

TEST_F(TelemetryTest, TelemetryDocRejectsUnknownMajorAndGarbage) {
  TelemetryDoc Doc;
  Doc.Metrics = metrics::snapshot();
  std::string Json = renderTelemetryJson(Doc);

  std::string Needle = format("\"major\":%d", TelemetryFormatMajor);
  size_t At = Json.find(Needle);
  ASSERT_NE(At, std::string::npos);
  std::string Bumped = Json;
  Bumped.replace(At, Needle.size(),
                 format("\"major\":%d", TelemetryFormatMajor + 1));
  TelemetryDoc Out;
  std::string Err;
  EXPECT_FALSE(parseTelemetryJson(Bumped, Out, Err));
  EXPECT_NE(Err.find("major version"), std::string::npos) << Err;

  // A newer minor of the same major still parses.
  std::string MinorBump = Json;
  Needle = format("\"minor\":%d", TelemetryFormatMinor);
  At = MinorBump.find(Needle);
  ASSERT_NE(At, std::string::npos);
  MinorBump.replace(At, Needle.size(),
                    format("\"minor\":%d", TelemetryFormatMinor + 5));
  EXPECT_TRUE(parseTelemetryJson(MinorBump, Out, Err)) << Err;

  EXPECT_FALSE(parseTelemetryJson("not json", Out, Err));
  EXPECT_FALSE(parseTelemetryJson("[]", Out, Err));
  // A report document is not a telemetry document.
  EXPECT_FALSE(parseTelemetryJson(
      "{\"format\":\"herbgrind-batch\",\"version\":{\"major\":1,\"minor\":0}}",
      Out, Err));
}

//===----------------------------------------------------------------------===//
// ThreadPool counters
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SingleWorkerPoolNeverSteals) {
  ThreadPool Pool(1);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 32; ++I)
    Pool.submit([&] { ++Ran; });
  Pool.waitAll();
  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(Ran.load(), 32);
  EXPECT_EQ(S.Submitted, 32u);
  EXPECT_EQ(S.Executed, 32u);
  EXPECT_EQ(S.Steals, 0u);
  EXPECT_GE(S.MaxQueueDepth, 1u);
}

TEST_F(TelemetryTest, BlockedWorkerForcesStealsOntoTheFreeOne) {
  ThreadPool Pool(2);
  std::promise<void> Release;
  std::shared_future<void> Gate(Release.get_future());
  std::atomic<bool> BlockerRunning{false};
  std::atomic<int> Ran{0};

  // One worker parks on the blocker; with it held, the free worker must
  // drain BOTH queues, so at least the other queue's half of the tasks
  // (31 of 64, counting round-robin skew) are steals.
  Pool.submit([&, Gate] {
    BlockerRunning = true;
    Gate.wait();
  });
  while (!BlockerRunning)
    std::this_thread::yield();
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { ++Ran; });
  while (Ran.load() < 64)
    std::this_thread::yield();
  Release.set_value();
  Pool.waitAll();

  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(S.Submitted, 65u);
  EXPECT_EQ(S.Executed, 65u);
  EXPECT_GE(S.Steals, 31u);
  EXPECT_GE(S.MaxQueueDepth, 1u);
}

//===----------------------------------------------------------------------===//
// The contract that matters: telemetry never touches report bytes
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, FullTelemetryLeavesEngineReportBytesIdentical) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(4);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 4;

  std::string Plain = Engine(Cfg).run(Cores).renderJson();
  metrics::resetAll(); // count only the instrumented sweep below

  trace::start();
  opprof::enable(1);
  BatchResult Instrumented = Engine(Cfg).run(Cores);
  opprof::disable();
  trace::stop();

  EXPECT_EQ(Instrumented.renderJson(), Plain);

  // The instrumented sweep actually produced telemetry: spans exist, the
  // engine counters moved, and the profiler attributed nonzero cost.
  EXPECT_FALSE(trace::collect().empty());
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_GT(S.counterValue("engine.shards_done"), 0u);
  EXPECT_GT(S.counterValue("profile.shadow_ns"), 0u);

  std::vector<opprof::OpProfileRow> Rows;
  for (const BenchmarkResult &BR : Instrumented.Benchmarks)
    opprof::accumulateOpProfile(BR.Records.Ops, Rows);
  opprof::finalizeOpProfile(Rows);
  ASSERT_FALSE(Rows.empty());
  uint64_t RowNanos = 0;
  for (const opprof::OpProfileRow &R : Rows)
    RowNanos += R.Nanos;
  // Sample period 1: the rows account for every measured nanosecond of
  // the sweep (>= the acceptance bar of 90% by construction).
  EXPECT_EQ(RowNanos, S.counterValue("profile.shadow_ns"));
  // EngineStats mirrors the new counters.
  EXPECT_EQ(Instrumented.Stats.PoolTasks, S.counterValue("pool.tasks_executed"));
}
