//===- tests/test_telemetry.cpp - Metrics, tracing, op profiler -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract: (1) the metrics registry merges
// counters, gauges, and timer histograms across threads, including
// threads that exited before the snapshot; (2) trace spans record real
// intervals and render as Chrome trace-event JSON that parses; (3) the op
// profiler attributes shadow cost to (SourceLoc, opcode) sites, survives
// clone/merge, and at sample period 1 its rows account for the full
// measured total; (4) the telemetry document round-trips through the
// serializer and rejects unknown major versions; (5) ThreadPool counts
// submissions, executions, and steals; and -- the load-bearing clause --
// (6) enabling every piece of telemetry at once leaves the engine's
// report bytes identical.
//
//===----------------------------------------------------------------------===//

#include "analysis/OpProfile.h"
#include "engine/Engine.h"
#include "engine/ThreadPool.h"
#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

using namespace herbgrind;
using namespace herbgrind::engine;

namespace {

std::vector<fpcore::Core> smallCorpusSubset(size_t MaxBenchmarks) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= MaxBenchmarks)
      break;
  }
  return Cores;
}

/// Every test begins from a clean registry; the suites share a process.
struct TelemetryTest : ::testing::Test {
  void SetUp() override {
    metrics::resetAll();
    trace::stop();
    trace::clear();
    opprof::disable();
  }
  void TearDown() override {
    opprof::disable();
    trace::stop();
    trace::clear();
    metrics::resetAll();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, CountersMergeAcrossThreadsIncludingExitedOnes) {
  metrics::Counter C = metrics::counter("test.counter_merge");
  C.add();        // this thread
  C.add(41);      // this thread again
  // Two short-lived threads: their slabs retire before the snapshot and
  // must still be counted.
  std::thread A([&] { C.add(100); });
  std::thread B([&] { metrics::counter("test.counter_merge").add(1000); });
  A.join();
  B.join();
  EXPECT_EQ(metrics::snapshot().counterValue("test.counter_merge"), 1142u);

  // Registration is idempotent: the same name is the same cell.
  metrics::counter("test.counter_merge").add(8);
  EXPECT_EQ(metrics::snapshot().counterValue("test.counter_merge"), 1150u);

  // Missing names read as zero rather than erroring.
  EXPECT_EQ(metrics::snapshot().counterValue("test.never_registered"), 0u);
}

TEST_F(TelemetryTest, GaugesTrackLevelAndHighWatermark) {
  metrics::Gauge G = metrics::gauge("test.gauge");
  G.set(5);
  G.add(7); // 12: the high watermark
  G.sub(9); // 3: the final level
  metrics::Snapshot S = metrics::snapshot();
  const metrics::GaugeSample *GS = S.findGauge("test.gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, 3);
  EXPECT_EQ(GS->Max, 12);
  EXPECT_EQ(S.findGauge("test.no_such_gauge"), nullptr);
}

TEST_F(TelemetryTest, TimersHistogramCountSumMaxAndBuckets) {
  metrics::Timer T = metrics::timer("test.timer");
  T.record(1);    // bucket 0
  T.record(9);    // floor(log2 9) = 3
  T.record(1000); // floor(log2 1000) = 9
  metrics::Snapshot S = metrics::snapshot();
  const metrics::TimerSample *TS = S.findTimer("test.timer");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 3u);
  EXPECT_EQ(TS->SumNanos, 1010u);
  EXPECT_EQ(TS->MaxNanos, 1000u);
  EXPECT_EQ(TS->Buckets[0], 1u);
  EXPECT_EQ(TS->Buckets[3], 1u);
  EXPECT_EQ(TS->Buckets[9], 1u);
  uint64_t Total = 0;
  for (uint64_t B : TS->Buckets)
    Total += B;
  EXPECT_EQ(Total, 3u);
}

TEST_F(TelemetryTest, TimerMaxSurvivesThreadExitAsMaxNotSum) {
  // The subtle retirement case: max cells from exited threads must fold
  // by max. Two exited threads recording 100 and 60 must yield max 100,
  // not 160, and a live-thread 30 must not disturb it.
  metrics::Timer T = metrics::timer("test.timer_retire");
  std::thread A([&] { T.record(100); });
  A.join();
  std::thread B([&] { T.record(60); });
  B.join();
  T.record(30);
  const metrics::Snapshot S = metrics::snapshot();
  const metrics::TimerSample *TS = S.findTimer("test.timer_retire");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 3u);
  EXPECT_EQ(TS->SumNanos, 190u);
  EXPECT_EQ(TS->MaxNanos, 100u);
}

TEST_F(TelemetryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  metrics::Counter C = metrics::counter("test.reset");
  C.add(5);
  metrics::gauge("test.reset_gauge").set(9);
  metrics::resetAll();
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(S.counterValue("test.reset"), 0u);
  const metrics::GaugeSample *GS = S.findGauge("test.reset_gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, 0);
  EXPECT_EQ(GS->Max, 0);
  // The old handle still works after the reset.
  C.add(2);
  EXPECT_EQ(metrics::snapshot().counterValue("test.reset"), 2u);
}

TEST_F(TelemetryTest, SnapshotIsNameSorted) {
  metrics::counter("test.zz").add(1);
  metrics::counter("test.aa").add(1);
  metrics::Snapshot S = metrics::snapshot();
  for (size_t I = 1; I < S.Counters.size(); ++I)
    EXPECT_LT(S.Counters[I - 1].Name, S.Counters[I].Name);
}

//===----------------------------------------------------------------------===//
// Trace spans
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SpansRecordOnlyWhileEnabled) {
  { trace::Span S("telemetry.test.before", "test"); }
  EXPECT_TRUE(trace::collect().empty());

  trace::start();
  EXPECT_TRUE(trace::enabled());
  { trace::Span S("telemetry.test.during", "test", "{\"k\":1}"); }
  trace::stop();
  EXPECT_FALSE(trace::enabled());
  { trace::Span S("telemetry.test.after", "test"); }

  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "telemetry.test.during");
  EXPECT_STREQ(Events[0].Cat, "test");
  EXPECT_EQ(Events[0].Args, "{\"k\":1}");
}

TEST_F(TelemetryTest, SpansFromExitedThreadsSurviveAndSortByStart) {
  trace::start();
  {
    trace::Span Outer("telemetry.test.outer", "test");
    std::thread T([] { trace::Span Inner("telemetry.test.inner", "test"); });
    T.join();
  }
  trace::stop();
  std::vector<trace::Event> Events = trace::collect();
  ASSERT_EQ(Events.size(), 2u);
  // collect() sorts by start time: the outer span opened first but closed
  // last, so ordering by start puts it first -- and its interval encloses
  // the inner one.
  EXPECT_EQ(Events[0].Name, "telemetry.test.outer");
  EXPECT_EQ(Events[1].Name, "telemetry.test.inner");
  EXPECT_LE(Events[0].StartNanos, Events[1].StartNanos);
  EXPECT_GE(Events[0].StartNanos + Events[0].DurNanos,
            Events[1].StartNanos + Events[1].DurNanos);
  EXPECT_NE(Events[0].Tid, Events[1].Tid);
}

TEST_F(TelemetryTest, ChromeTraceJsonParsesWithExpectedShape) {
  trace::start();
  { trace::Span S("telemetry.test.json", "test", "{\"shard\":3}"); }
  trace::stop();
  std::string Json = trace::renderChromeTrace();

  JsonParseResult R = parseJson(Json);
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue &Root = R.Value;
  ASSERT_TRUE(Root.isObject());
  const JsonValue *EventsV = Root.field("traceEvents");
  ASSERT_NE(EventsV, nullptr);
  ASSERT_TRUE(EventsV->isArray());
  bool Found = false;
  for (const JsonValue &Ev : EventsV->Arr) {
    const JsonValue *Name = Ev.field("name");
    if (!Name || Name->Str != "telemetry.test.json")
      continue;
    Found = true;
    ASSERT_NE(Ev.field("ph"), nullptr);
    EXPECT_EQ(Ev.field("ph")->Str, "X");
    EXPECT_EQ(Ev.field("cat")->Str, "test");
    ASSERT_NE(Ev.field("ts"), nullptr);
    ASSERT_NE(Ev.field("dur"), nullptr);
    const JsonValue *Args = Ev.field("args");
    ASSERT_NE(Args, nullptr);
    ASSERT_TRUE(Args->isObject());
    ASSERT_NE(Args->field("shard"), nullptr);
    EXPECT_EQ(Args->field("shard")->asU64(), 3u);
  }
  EXPECT_TRUE(Found);
  const JsonValue *Unit = Root.field("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->Str, "ns");
}

//===----------------------------------------------------------------------===//
// The op profiler
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, ProfilerAttributesCostToOpRecordsWhenEnabled) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  B.out(T);
  B.halt();
  Program P = B.finish();

  // Disabled (the default): no cost recorded anywhere.
  {
    Herbgrind HG(P);
    HG.runOnInput({1e15});
    for (const auto &[PC, Rec] : HG.opRecords()) {
      EXPECT_EQ(Rec.ProfSamples, 0u) << "pc " << PC;
      EXPECT_EQ(Rec.ProfNanos, 0u) << "pc " << PC;
    }
  }
  EXPECT_EQ(metrics::snapshot().counterValue("profile.shadow_ops_measured"),
            0u);

  // Enabled at period 1: every shadow-op execution is measured.
  opprof::enable(1);
  Herbgrind HG(P);
  HG.runOnInput({1e15});
  HG.runOnInput({2.5});
  opprof::disable();

  uint64_t TotalSamples = 0, TotalNanos = 0;
  for (const auto &[PC, Rec] : HG.opRecords()) {
    EXPECT_EQ(Rec.ProfSamples, Rec.Executions) << "pc " << PC;
    EXPECT_GT(Rec.ProfNanos, 0u) << "pc " << PC;
    TotalSamples += Rec.ProfSamples;
    TotalNanos += Rec.ProfNanos;
  }
  EXPECT_EQ(TotalSamples, 4u); // 2 ops x 2 runs

  // The global counters agree with the per-record sums: that is the >=90%
  // acceptance property -- at period 1 attribution is exact (100%).
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_EQ(S.counterValue("profile.shadow_ops_measured"), TotalSamples);
  EXPECT_EQ(S.counterValue("profile.shadow_ns"), TotalNanos);
}

TEST_F(TelemetryTest, ProfilerSamplePeriodSkipsExecutions) {
  ProgramBuilder B;
  auto X = B.input(0);
  B.out(B.op(Opcode::AddF64, X, B.constF64(1.0)));
  B.halt();
  Program P = B.finish();

  opprof::enable(4);
  EXPECT_EQ(opprof::samplePeriod(), 4u);
  Herbgrind HG(P);
  for (int I = 0; I < 8; ++I)
    HG.runOnInput({static_cast<double>(I)});
  opprof::disable();
  EXPECT_EQ(opprof::samplePeriod(), 0u);

  uint64_t Samples = 0, Executions = 0;
  for (const auto &[PC, Rec] : HG.opRecords()) {
    Samples += Rec.ProfSamples;
    Executions += Rec.Executions;
  }
  EXPECT_EQ(Executions, 8u);
  EXPECT_EQ(Samples, 2u); // every 4th execution on this thread
}

TEST_F(TelemetryTest, ProfileFieldsSurviveCloneAndSumOnMerge) {
  // Executed records must carry expressions for mergeFrom; a constant
  // leaf is the smallest well-formed one.
  OpRecord A;
  A.Op = Opcode::MulF64;
  A.Loc = SourceLoc("a.cpp", 10, "f");
  A.Executions = 6;
  A.Expr = SymExpr::makeConst(2.0);
  A.ProfSamples = 3;
  A.ProfNanos = 300;
  A.ProfLimbAllocs = 2;
  A.ProfLimbHits = 7;

  OpRecord C = A.clone();
  EXPECT_EQ(C.ProfSamples, 3u);
  EXPECT_EQ(C.ProfNanos, 300u);
  EXPECT_EQ(C.ProfLimbAllocs, 2u);
  EXPECT_EQ(C.ProfLimbHits, 7u);

  OpRecord B;
  B.Op = Opcode::MulF64;
  B.Loc = A.Loc;
  B.Executions = 4;
  B.Expr = SymExpr::makeConst(2.0);
  B.ProfSamples = 1;
  B.ProfNanos = 50;
  B.ProfLimbAllocs = 1;
  B.ProfLimbHits = 2;
  A.mergeFrom(B, 3);
  EXPECT_EQ(A.ProfSamples, 4u);
  EXPECT_EQ(A.ProfNanos, 350u);
  EXPECT_EQ(A.ProfLimbAllocs, 3u);
  EXPECT_EQ(A.ProfLimbHits, 9u);
}

TEST_F(TelemetryTest, ProfileRowsMergeBySiteRankAndExtrapolate) {
  std::map<uint32_t, OpRecord> Ops;
  // Two PCs at the same (Loc, Op) site must merge into one row.
  OpRecord &R1 = Ops[1];
  R1.Op = Opcode::AddF64;
  R1.Loc = SourceLoc("k.cpp", 5, "hot");
  R1.Executions = 10;
  R1.ProfSamples = 5;
  R1.ProfNanos = 500;
  OpRecord &R2 = Ops[2];
  R2.Op = Opcode::AddF64;
  R2.Loc = SourceLoc("k.cpp", 5, "hot");
  R2.Executions = 10;
  R2.ProfSamples = 5;
  R2.ProfNanos = 300;
  // A cheaper site at another line.
  OpRecord &R3 = Ops[3];
  R3.Op = Opcode::SqrtF64;
  R3.Loc = SourceLoc("k.cpp", 9, "cold");
  R3.Executions = 4;
  R3.ProfSamples = 2;
  R3.ProfNanos = 100;
  // A record the analysis saw but never executed contributes nothing.
  OpRecord &R4 = Ops[4];
  R4.Op = Opcode::DivF64;
  R4.Executions = 0;

  std::vector<opprof::OpProfileRow> Rows;
  opprof::accumulateOpProfile(Ops, Rows);
  opprof::finalizeOpProfile(Rows);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Loc.Line, 5);
  EXPECT_EQ(Rows[0].Executions, 20u);
  EXPECT_EQ(Rows[0].Samples, 10u);
  EXPECT_EQ(Rows[0].Nanos, 800u);
  // 800 ns over 10 of 20 executions extrapolates to 1600.
  EXPECT_DOUBLE_EQ(Rows[0].estNanos(), 1600.0);
  EXPECT_EQ(Rows[1].Loc.Line, 9);
  EXPECT_DOUBLE_EQ(Rows[1].estNanos(), 200.0);

  std::string Table = opprof::renderOpProfileTable(Rows, 10, 900);
  EXPECT_NE(Table.find("add.f64"), std::string::npos);
  EXPECT_NE(Table.find("sqrt.f64"), std::string::npos);
  EXPECT_NE(Table.find("k.cpp:5 in hot"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The telemetry document
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, TelemetryDocRoundTripsByteIdentically) {
  metrics::counter("test.doc_counter").add(42);
  metrics::gauge("test.doc_gauge").set(-3);
  metrics::timer("test.doc_timer").record(1024);

  TelemetryDoc Doc;
  Doc.Metrics = metrics::snapshot();
  opprof::OpProfileRow Row;
  Row.Op = Opcode::AddF64;
  Row.Loc = SourceLoc("q.fpcore", 3, "quad");
  Row.Executions = 100;
  Row.Samples = 25;
  Row.Nanos = 12345;
  Row.LimbAllocs = 6;
  Row.LimbHits = 9;
  Doc.Profile.push_back(Row);
  Doc.ProfileTotalNanos = 12345;

  std::string Json = renderTelemetryJson(Doc);
  TelemetryDoc Back;
  std::string Err;
  ASSERT_TRUE(parseTelemetryJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.Metrics.counterValue("test.doc_counter"), 42u);
  const metrics::GaugeSample *GS = Back.Metrics.findGauge("test.doc_gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, -3);
  const metrics::TimerSample *TS = Back.Metrics.findTimer("test.doc_timer");
  ASSERT_NE(TS, nullptr);
  EXPECT_EQ(TS->Count, 1u);
  EXPECT_EQ(TS->SumNanos, 1024u);
  EXPECT_EQ(TS->Buckets[10], 1u);
  ASSERT_EQ(Back.Profile.size(), 1u);
  EXPECT_EQ(Back.Profile[0].Op, Opcode::AddF64);
  EXPECT_EQ(Back.Profile[0].Loc.str(), "q.fpcore:3 in quad");
  EXPECT_EQ(Back.Profile[0].Samples, 25u);
  EXPECT_EQ(Back.ProfileTotalNanos, 12345u);

  // parse(render(x)) re-renders byte-identically.
  EXPECT_EQ(renderTelemetryJson(Back), Json);
}

TEST_F(TelemetryTest, TelemetryDocRejectsUnknownMajorAndGarbage) {
  TelemetryDoc Doc;
  Doc.Metrics = metrics::snapshot();
  std::string Json = renderTelemetryJson(Doc);

  std::string Needle = format("\"major\":%d", TelemetryFormatMajor);
  size_t At = Json.find(Needle);
  ASSERT_NE(At, std::string::npos);
  std::string Bumped = Json;
  Bumped.replace(At, Needle.size(),
                 format("\"major\":%d", TelemetryFormatMajor + 1));
  TelemetryDoc Out;
  std::string Err;
  EXPECT_FALSE(parseTelemetryJson(Bumped, Out, Err));
  EXPECT_NE(Err.find("major version"), std::string::npos) << Err;

  // A newer minor of the same major still parses.
  std::string MinorBump = Json;
  Needle = format("\"minor\":%d", TelemetryFormatMinor);
  At = MinorBump.find(Needle);
  ASSERT_NE(At, std::string::npos);
  MinorBump.replace(At, Needle.size(),
                    format("\"minor\":%d", TelemetryFormatMinor + 5));
  EXPECT_TRUE(parseTelemetryJson(MinorBump, Out, Err)) << Err;

  EXPECT_FALSE(parseTelemetryJson("not json", Out, Err));
  EXPECT_FALSE(parseTelemetryJson("[]", Out, Err));
  // A report document is not a telemetry document.
  EXPECT_FALSE(parseTelemetryJson(
      "{\"format\":\"herbgrind-batch\",\"version\":{\"major\":1,\"minor\":0}}",
      Out, Err));
}

//===----------------------------------------------------------------------===//
// ThreadPool counters
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, SingleWorkerPoolNeverSteals) {
  ThreadPool Pool(1);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 32; ++I)
    Pool.submit([&] { ++Ran; });
  Pool.waitAll();
  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(Ran.load(), 32);
  EXPECT_EQ(S.Submitted, 32u);
  EXPECT_EQ(S.Executed, 32u);
  EXPECT_EQ(S.Steals, 0u);
  EXPECT_GE(S.MaxQueueDepth, 1u);
}

TEST_F(TelemetryTest, BlockedWorkerForcesStealsOntoTheFreeOne) {
  ThreadPool Pool(2);
  std::promise<void> Release;
  std::shared_future<void> Gate(Release.get_future());
  std::atomic<bool> BlockerRunning{false};
  std::atomic<int> Ran{0};

  // One worker parks on the blocker; with it held, the free worker must
  // drain BOTH queues, so at least the other queue's half of the tasks
  // (31 of 64, counting round-robin skew) are steals.
  Pool.submit([&, Gate] {
    BlockerRunning = true;
    Gate.wait();
  });
  while (!BlockerRunning)
    std::this_thread::yield();
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { ++Ran; });
  while (Ran.load() < 64)
    std::this_thread::yield();
  Release.set_value();
  Pool.waitAll();

  ThreadPool::PoolStats S = Pool.stats();
  EXPECT_EQ(S.Submitted, 65u);
  EXPECT_EQ(S.Executed, 65u);
  EXPECT_GE(S.Steals, 31u);
  EXPECT_GE(S.MaxQueueDepth, 1u);
}

//===----------------------------------------------------------------------===//
// The contract that matters: telemetry never touches report bytes
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, FullTelemetryLeavesEngineReportBytesIdentical) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(4);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 4;

  std::string Plain = Engine(Cfg).run(Cores).renderJson();
  metrics::resetAll(); // count only the instrumented sweep below

  trace::start();
  opprof::enable(1);
  BatchResult Instrumented = Engine(Cfg).run(Cores);
  opprof::disable();
  trace::stop();

  EXPECT_EQ(Instrumented.renderJson(), Plain);

  // The instrumented sweep actually produced telemetry: spans exist, the
  // engine counters moved, and the profiler attributed nonzero cost.
  EXPECT_FALSE(trace::collect().empty());
  metrics::Snapshot S = metrics::snapshot();
  EXPECT_GT(S.counterValue("engine.shards_done"), 0u);
  EXPECT_GT(S.counterValue("profile.shadow_ns"), 0u);

  std::vector<opprof::OpProfileRow> Rows;
  for (const BenchmarkResult &BR : Instrumented.Benchmarks)
    opprof::accumulateOpProfile(BR.Records.Ops, Rows);
  opprof::finalizeOpProfile(Rows);
  ASSERT_FALSE(Rows.empty());
  uint64_t RowNanos = 0;
  for (const opprof::OpProfileRow &R : Rows)
    RowNanos += R.Nanos;
  // Sample period 1: the rows account for every measured nanosecond of
  // the sweep (>= the acceptance bar of 90% by construction).
  EXPECT_EQ(RowNanos, S.counterValue("profile.shadow_ns"));
  // EngineStats mirrors the new counters.
  EXPECT_EQ(Instrumented.Stats.PoolTasks, S.counterValue("pool.tasks_executed"));
}

//===----------------------------------------------------------------------===//
// Mergeable telemetry: the snapshot fold algebra
//===----------------------------------------------------------------------===//

#include "engine/RunLedger.h"
#include "support/Events.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace {

/// A scoped temp directory under the system temp root.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-telemetry-" + Tag + "-" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

metrics::CounterSample makeCounter(const char *Name, uint64_t V) {
  metrics::CounterSample S;
  S.Name = Name;
  S.Value = V;
  return S;
}

metrics::TimerSample makeTimer(const char *Name, uint64_t Count, uint64_t Sum,
                               uint64_t Max, unsigned Bucket) {
  metrics::TimerSample S;
  S.Name = Name;
  S.Count = Count;
  S.SumNanos = Sum;
  S.MaxNanos = Max;
  S.Buckets[Bucket] = Count;
  return S;
}

metrics::GaugeSample makeGauge(const char *Name, int64_t V, int64_t Max) {
  metrics::GaugeSample S;
  S.Name = Name;
  S.Value = V;
  S.Max = Max;
  return S;
}

} // namespace

TEST_F(TelemetryTest, SnapshotMergeFoldsCountersTimersAndGauges) {
  metrics::Snapshot A;
  A.Counters = {makeCounter("a.only", 3), makeCounter("both", 10)};
  A.Timers = {makeTimer("t", 2, 100, 80, 6)};
  A.Gauges = {makeGauge("g", 4, 7)};

  metrics::Snapshot B;
  B.Counters = {makeCounter("b.only", 5), makeCounter("both", 32)};
  B.Timers = {makeTimer("t", 3, 50, 30, 4)};
  B.Gauges = {makeGauge("g", 6, 11)};

  A.mergeFrom(B);
  EXPECT_EQ(A.counterValue("a.only"), 3u);
  EXPECT_EQ(A.counterValue("b.only"), 5u);
  EXPECT_EQ(A.counterValue("both"), 42u);

  const metrics::TimerSample *T = A.findTimer("t");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Count, 5u);
  EXPECT_EQ(T->SumNanos, 150u);
  // Max folds as max, never as sum: two machines' slowest shard is the
  // slower of the two, not their total.
  EXPECT_EQ(T->MaxNanos, 80u);
  EXPECT_EQ(T->Buckets[6], 2u);
  EXPECT_EQ(T->Buckets[4], 3u);

  // Gauges are additive levels: per-slice totals (shard counts, worker
  // counts) recover the single-machine value when slices merge.
  const metrics::GaugeSample *G = A.findGauge("g");
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Value, 10);
  EXPECT_EQ(G->Max, 18);
}

TEST_F(TelemetryTest, SnapshotMergeIsCommutativeAssociativeWithEmptyIdentity) {
  auto Make = [](uint64_t C, uint64_t TSum, int64_t G) {
    metrics::Snapshot S;
    S.Counters = {makeCounter("c", C)};
    S.Timers = {makeTimer("t", 1, TSum, TSum, 3)};
    S.Gauges = {makeGauge("g", G, G)};
    return S;
  };
  auto Render = [](const metrics::Snapshot &S) {
    TelemetryDoc D;
    D.Metrics = S;
    return renderTelemetryJson(D);
  };
  metrics::Snapshot X = Make(1, 10, 100), Y = Make(2, 20, 200),
                    Z = Make(4, 40, 400);

  // Commutative: X+Y == Y+X (byte-compared through the renderer, which
  // also proves the merged sample lists stay name-sorted).
  metrics::Snapshot XY = X, YX = Y;
  XY.mergeFrom(Y);
  YX.mergeFrom(X);
  EXPECT_EQ(Render(XY), Render(YX));

  // Associative: (X+Y)+Z == X+(Y+Z).
  metrics::Snapshot L = XY, YZ = Y, R = X;
  L.mergeFrom(Z);
  YZ.mergeFrom(Z);
  R.mergeFrom(YZ);
  EXPECT_EQ(Render(L), Render(R));

  // The empty snapshot is the identity on both sides.
  metrics::Snapshot E, XE = X;
  XE.mergeFrom(E);
  EXPECT_EQ(Render(XE), Render(X));
  metrics::Snapshot EX;
  EX.mergeFrom(X);
  EXPECT_EQ(Render(EX), Render(X));
}

TEST_F(TelemetryTest, OpProfileRowsMergeBySiteAndOpcode) {
  auto Row = [](Opcode Op, const char *File, uint64_t Execs, uint64_t Nanos) {
    opprof::OpProfileRow R;
    R.Op = Op;
    R.Loc = SourceLoc(File, 1, "f");
    R.Executions = Execs;
    R.Samples = Execs;
    R.Nanos = Nanos;
    R.LimbAllocs = 1;
    R.LimbHits = 2;
    return R;
  };
  std::vector<opprof::OpProfileRow> Dst = {Row(Opcode::AddF64, "a", 10, 100),
                                           Row(Opcode::MulF64, "a", 5, 50)};
  std::vector<opprof::OpProfileRow> Src = {Row(Opcode::AddF64, "a", 7, 70),
                                           Row(Opcode::AddF64, "b", 3, 30)};
  opprof::mergeOpProfileRows(Dst, Src);
  ASSERT_EQ(Dst.size(), 3u);
  const opprof::OpProfileRow *Merged = nullptr, *New = nullptr;
  for (const opprof::OpProfileRow &R : Dst) {
    if (R.Op == Opcode::AddF64 && R.Loc.str() == "a:1 in f")
      Merged = &R;
    if (R.Loc.str() == "b:1 in f")
      New = &R;
  }
  ASSERT_NE(Merged, nullptr);
  EXPECT_EQ(Merged->Executions, 17u);
  EXPECT_EQ(Merged->Nanos, 170u);
  EXPECT_EQ(Merged->LimbAllocs, 2u);
  EXPECT_EQ(Merged->LimbHits, 4u);
  ASSERT_NE(New, nullptr);
  EXPECT_EQ(New->Executions, 3u);
  EXPECT_EQ(New->Nanos, 30u);
}

//===----------------------------------------------------------------------===//
// Telemetry document merging (cross-format) and the meta block
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, MergeTelemetryFoldsMixedFormatsOrderIndependently) {
  TelemetryDoc A;
  A.Metrics.Counters = {makeCounter("engine.runs", 8)};
  opprof::OpProfileRow RA;
  RA.Op = Opcode::AddF64;
  RA.Loc = SourceLoc("x.fpcore", 2, "x");
  RA.Executions = 8;
  RA.Samples = 8;
  RA.Nanos = 800;
  A.Profile.push_back(RA);
  A.ProfileTotalNanos = 800;
  A.HasMeta = true;
  A.Meta.Host = "machine-a";
  A.Meta.Timestamp = "2026-08-08T00:00:00Z";
  A.Meta.MergedDocs = 1;

  TelemetryDoc B = A;
  B.Meta.Host = "machine-b";
  B.Metrics.Counters = {makeCounter("engine.runs", 4)};
  B.Profile[0].Executions = 4;
  B.Profile[0].Nanos = 400;
  B.ProfileTotalNanos = 400;

  // One sidecar JSON, the other HGB: a merge must sniff per document.
  std::string JsonA = renderTelemetryJson(A);
  std::string BinB = renderTelemetryBinary(B);

  TelemetryDoc AB, BA;
  std::string Err;
  ASSERT_TRUE(mergeTelemetry({JsonA, BinB}, AB, Err)) << Err;
  ASSERT_TRUE(mergeTelemetry({BinB, JsonA}, BA, Err)) << Err;

  EXPECT_EQ(AB.Metrics.counterValue("engine.runs"), 12u);
  ASSERT_EQ(AB.Profile.size(), 1u);
  EXPECT_EQ(AB.Profile[0].Executions, 12u);
  EXPECT_EQ(AB.ProfileTotalNanos, 1200u);
  EXPECT_EQ(AB.Meta.MergedDocs, 2u);
  // Provenance is cleared (the merging machine stamps its own when it
  // writes), which is exactly what makes the merge byte-deterministic:
  EXPECT_EQ(AB.Meta.Host, "");
  EXPECT_EQ(AB.Meta.Timestamp, "");
  EXPECT_EQ(renderTelemetryJson(AB), renderTelemetryJson(BA));

  // An unparseable member fails the merge loudly, naming the document.
  TelemetryDoc Bad;
  EXPECT_FALSE(mergeTelemetry({JsonA, "not json"}, Bad, Err));
  EXPECT_NE(Err.find("document 1"), std::string::npos) << Err;
  EXPECT_FALSE(mergeTelemetry({}, Bad, Err));
}

TEST_F(TelemetryTest, TelemetryMetaRoundTripsAndMinor0DocsStillParse) {
  TelemetryDoc Doc;
  Doc.Metrics.Counters = {makeCounter("c", 1)};
  Doc.HasMeta = true;
  Doc.Meta.Host = "hostname-1";
  Doc.Meta.Timestamp = "2026-08-08T12:00:00Z";
  Doc.Meta.MergedDocs = 3;

  std::string Json = renderTelemetryJson(Doc);
  EXPECT_NE(Json.find("\"meta\":{\"host\":\"hostname-1\""), std::string::npos);
  TelemetryDoc Back;
  std::string Err;
  ASSERT_TRUE(parseTelemetry(Json, Back, Err)) << Err;
  EXPECT_TRUE(Back.HasMeta);
  EXPECT_EQ(Back.Meta.Host, "hostname-1");
  EXPECT_EQ(Back.Meta.MergedDocs, 3u);
  EXPECT_EQ(renderTelemetryJson(Back), Json);

  std::string Bin = renderTelemetryBinary(Doc);
  TelemetryDoc BinBack;
  ASSERT_TRUE(parseTelemetry(Bin, BinBack, Err)) << Err;
  EXPECT_EQ(renderTelemetryJson(BinBack), Json);

  // A pre-meta (minor 0) JSON document -- no meta field, version.minor 0
  // -- still parses; the reader treats meta as absent.
  TelemetryDoc Old;
  Old.Metrics.Counters = {makeCounter("c", 1)};
  std::string OldJson = renderTelemetryJson(Old);
  std::string Needle = format("\"minor\":%d", TelemetryFormatMinor);
  size_t At = OldJson.find(Needle);
  ASSERT_NE(At, std::string::npos);
  OldJson.replace(At, Needle.size(), "\"minor\":0");
  TelemetryDoc OldBack;
  ASSERT_TRUE(parseTelemetry(OldJson, OldBack, Err)) << Err;
  EXPECT_FALSE(OldBack.HasMeta);

  // The same compatibility in HGB: a minor-0 binary body has NO meta
  // presence byte at all. Craft one by patching the header's minor
  // varint and dropping the presence byte (the header is magic + three
  // single-byte varints + the codec byte; the tiny body stays raw).
  std::string OldBin = renderTelemetryBinary(Old);
  ASSERT_GT(OldBin.size(), 9u);
  ASSERT_EQ(static_cast<unsigned char>(OldBin[6]),
            static_cast<unsigned char>(TelemetryFormatMinor));
  ASSERT_EQ(OldBin[7], 0); // raw body codec
  ASSERT_EQ(OldBin[8], 0); // the meta presence byte being dropped
  OldBin[6] = 0;
  OldBin.erase(8, 1);
  TelemetryDoc OldBinBack;
  ASSERT_TRUE(parseTelemetry(OldBin, OldBinBack, Err)) << Err;
  EXPECT_FALSE(OldBinBack.HasMeta);
  EXPECT_EQ(OldBinBack.Metrics.counterValue("c"), 1u);
}

TEST_F(TelemetryTest, TwoSliceSweepTelemetryMergesToSingleRunCounters) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(3);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 4;

  // The single-machine reference sweep.
  Engine(Cfg).run(Cores);
  metrics::Snapshot Single = metrics::snapshot();
  ASSERT_GT(Single.counterValue("engine.runs"), 0u);

  // The same layout split across two shard-range slices, telemetry
  // captured per slice (as two distributed machines would).
  metrics::resetAll();
  EngineConfig SliceA = Cfg;
  SliceA.ShardBegin = 0;
  SliceA.ShardEnd = 1;
  Engine(SliceA).run(Cores);
  metrics::Snapshot A = metrics::snapshot();

  metrics::resetAll();
  EngineConfig SliceB = Cfg;
  SliceB.ShardBegin = 1;
  Engine(SliceB).run(Cores);
  metrics::Snapshot B = metrics::snapshot();

  A.mergeFrom(B);
  for (const char *Name :
       {"engine.runs", "engine.shards_done", "engine.shards_analyzed",
        "engine.shards_cached"})
    EXPECT_EQ(A.counterValue(Name), Single.counterValue(Name)) << Name;
  // Gauge levels are per-slice totals, so the merged sum recovers the
  // single-machine layout width.
  const metrics::GaugeSample *Merged = A.findGauge("engine.shards_total");
  const metrics::GaugeSample *Ref = Single.findGauge("engine.shards_total");
  ASSERT_NE(Merged, nullptr);
  ASSERT_NE(Ref, nullptr);
  EXPECT_EQ(Merged->Value, Ref->Value);
}

//===----------------------------------------------------------------------===//
// The run ledger
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, LedgerEntryRoundTripsByteIdenticallyInBothFormats) {
  LedgerEntry E;
  E.Host = "ci-host";
  E.Timestamp = "2026-08-08T12:34:56Z";
  E.TimestampNanos = 1700000000123456789ull;
  E.Label = "sweep";
  E.ConfigHash = "deadbeef";
  E.WireFormat = "json";
  E.Tier = "confirm";
  E.Jobs = 4;
  E.Samples = 64;
  E.ShardSize = 16;
  E.BatchLanes = 8;
  E.Benchmarks = 3;
  E.Shards = 12;
  E.Runs = 192;
  E.AnalyzedShards = 10;
  E.CachedShards = 2;
  E.ResultCacheHits = 2;
  E.ResultCacheMisses = 10;
  E.LimbHeapAllocs = 17;
  E.LimbCacheHits = 372;
  E.Tier0Runs = 192;
  E.EscalatedRuns = 64;
  E.PoolTasks = 24;
  E.PoolSteals = 3;
  E.WallSeconds = 1.25;
  E.Metrics.Counters = {makeCounter("engine.runs", 192)};

  std::string Json = renderLedgerEntryJson(E);
  LedgerEntry Back;
  std::string Err;
  ASSERT_TRUE(parseLedgerEntry(Json, Back, Err)) << Err;
  EXPECT_EQ(renderLedgerEntryJson(Back), Json);
  EXPECT_EQ(Back.Host, "ci-host");
  EXPECT_EQ(Back.TimestampNanos, 1700000000123456789ull);
  EXPECT_EQ(Back.EscalatedRuns, 64u);
  EXPECT_EQ(Back.WallSeconds, 1.25);
  EXPECT_EQ(Back.Metrics.counterValue("engine.runs"), 192u);

  std::string Bin = renderLedgerEntryBinary(E);
  LedgerEntry BinBack;
  ASSERT_TRUE(parseLedgerEntry(Bin, BinBack, Err)) << Err;
  EXPECT_EQ(renderLedgerEntryJson(BinBack), Json);
  EXPECT_EQ(renderLedgerEntryBinary(BinBack), Bin);

  // Unknown major versions are rejected in both encodings.
  std::string Needle = format("\"major\":%d", LedgerFormatMajor);
  size_t At = Json.find(Needle);
  ASSERT_NE(At, std::string::npos);
  std::string Bumped = Json;
  Bumped.replace(At, Needle.size(),
                 format("\"major\":%d", LedgerFormatMajor + 1));
  EXPECT_FALSE(parseLedgerEntry(Bumped, Back, Err));
}

TEST_F(TelemetryTest, LedgerAppendListsChronologicallyAndMixesFormats) {
  TempDir Dir("ledger");
  LedgerEntry E1;
  E1.TimestampNanos = 2000;
  E1.Timestamp = "2026-08-08T00:00:02Z";
  E1.Label = "later";
  LedgerEntry E2;
  E2.TimestampNanos = 1000;
  E2.Timestamp = "2026-08-08T00:00:01Z";
  E2.Label = "earlier";

  std::string Path, Err;
  ASSERT_TRUE(ledgerAppend(Dir.Path, E1, WireEncoding::Json, Path, Err))
      << Err;
  ASSERT_TRUE(ledgerAppend(Dir.Path, E2, WireEncoding::Binary, Path, Err))
      << Err;

  std::vector<LedgerEntry> Entries;
  std::vector<std::string> Paths;
  ASSERT_TRUE(ledgerList(Dir.Path, Entries, Paths, Err)) << Err;
  ASSERT_EQ(Entries.size(), 2u);
  // Sorted by recorded wall-clock time, not by arrival: the binary entry
  // written second sorts first.
  EXPECT_EQ(Entries[0].Label, "earlier");
  EXPECT_EQ(Entries[1].Label, "later");

  // A corrupt entry fails the listing loudly instead of shortening it.
  std::ofstream(Dir.Path + "/entry-9999-1.json") << "{broken";
  EXPECT_FALSE(ledgerList(Dir.Path, Entries, Paths, Err));
}

TEST_F(TelemetryTest, LedgerCompareFlagsEachRegressionAxis) {
  LedgerEntry Base;
  Base.WallSeconds = 10.0;
  Base.ResultCacheHits = 90;
  Base.ResultCacheMisses = 10;
  Base.Runs = 100;
  Base.Tier0Runs = 100;
  Base.EscalatedRuns = 5;
  Base.LimbHeapAllocs = 10000;

  // Within thresholds: nothing flags.
  LedgerEntry Ok = Base;
  Ok.WallSeconds = 11.0;
  Ok.EscalatedRuns = 8;
  Ok.LimbHeapAllocs = 10500;
  EXPECT_TRUE(ledgerCompare(Base, Ok).empty());

  // Each axis breached individually.
  LedgerEntry Slow = Base;
  Slow.WallSeconds = 13.0;
  auto R = ledgerCompare(Base, Slow);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "wall_seconds");

  LedgerEntry ColdCache = Base;
  ColdCache.ResultCacheHits = 70;
  ColdCache.ResultCacheMisses = 30;
  R = ledgerCompare(Base, ColdCache);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "cache_hit_rate");

  LedgerEntry Escalating = Base;
  Escalating.EscalatedRuns = 20;
  R = ledgerCompare(Base, Escalating);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "escalation_fraction");

  LedgerEntry Leaky = Base;
  Leaky.LimbHeapAllocs = 12000;
  R = ledgerCompare(Base, Leaky);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "limb_heap_allocs");

  // The absolute heap slack shields zero-alloc baselines from noise.
  LedgerEntry ZeroBase = Base;
  ZeroBase.LimbHeapAllocs = 0;
  LedgerEntry Noise = ZeroBase;
  Noise.LimbHeapAllocs = 100;
  EXPECT_TRUE(ledgerCompare(ZeroBase, Noise).empty());

  // Untiered sweeps (no tier-0 runs) never judge escalation.
  LedgerEntry UntieredBase = Base;
  UntieredBase.Tier0Runs = 0;
  LedgerEntry UntieredCur = Escalating;
  UntieredCur.Tier0Runs = 0;
  EXPECT_TRUE(ledgerCompare(UntieredBase, UntieredCur).empty());
}

//===----------------------------------------------------------------------===//
// The structured event stream
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, EventStreamWritesParseableLifecycleNdjson) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(2);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 8;
  Cfg.ShardSize = 4;

  std::string Plain = Engine(Cfg).run(Cores).renderJson();

  TempDir Dir("events");
  std::string EventsPath = Dir.Path + "/events.ndjson";
  std::string Err;
  ASSERT_TRUE(events::start(EventsPath, Err)) << Err;
  ASSERT_TRUE(events::enabled());
  std::string Streamed = Engine(Cfg).run(Cores).renderJson();
  events::stop();
  EXPECT_FALSE(events::enabled());

  // The stream observes, never steers.
  EXPECT_EQ(Streamed, Plain);

  std::ifstream In(EventsPath);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Types;
  uint64_t ExpectSeq = 0, AnalyzedOrCached = 0, Reduced = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    JsonParseResult R = parseJson(Line);
    ASSERT_TRUE(R.Ok) << Line;
    const JsonValue *Ev = R.Value.field("event");
    const JsonValue *Seq = R.Value.field("seq");
    const JsonValue *Ts = R.Value.field("ts");
    ASSERT_NE(Ev, nullptr);
    ASSERT_NE(Seq, nullptr);
    ASSERT_NE(Ts, nullptr);
    EXPECT_EQ(Seq->asU64(), ExpectSeq++);
    Types.push_back(Ev->Str);
    if (Ev->Str == "shard.analyzed" || Ev->Str == "shard.cache_hit")
      ++AnalyzedOrCached;
    if (Ev->Str == "shard.reduced")
      ++Reduced;
  }
  ASSERT_FALSE(Types.empty());
  EXPECT_EQ(Types.front(), "sweep.begin");
  EXPECT_EQ(Types.back(), "sweep.end");
  // Every shard surfaces its lifecycle: 4 shards queued, analyzed (or
  // cache-hit), and reduced.
  EXPECT_EQ(AnalyzedOrCached, 4u);
  EXPECT_EQ(Reduced, 4u);
  EXPECT_EQ(std::count(Types.begin(), Types.end(), "shard.queued"), 4);

  // stop() is idempotent and emit() after stop is a no-op.
  events::stop();
  events::emit("ignored");
}
