//===- tests/test_batched.cpp - Sample-batched evaluation -----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The batched hot path's contract (docs/ARCHITECTURE.md, "Batched
// evaluation"): processing N sample points per analyzer call is purely a
// scheduling change. (1) Herbgrind::runOnBatch leaves records, verdicts,
// and outputs byte-for-byte equal to N sequential runOnInput calls, in
// full and predicate-only mode alike; (2) engine sweeps render identical
// JSON at every --batch value, across jobs counts, tiers, frontends, and
// non-divisor batch/shard remainders; (3) fpcore::evalDoubleBatch is
// bitwise equal to evalDouble, including the If/Let/While scalar
// fallbacks.
//
//===----------------------------------------------------------------------===//

#include "DiffHarness.h"
#include "fpcore/Eval.h"
#include "herbgrind/Herbgrind.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace herbgrind;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Sampled input tuples for a compiled core, matching the engine's
/// deterministic per-benchmark sampling shape (the exact stream does not
/// matter here -- only that batch and scalar legs see the same one).
std::vector<std::vector<double>> sampleInputs(const fpcore::Core &C,
                                              size_t Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::vector<double>> Sets;
  for (size_t I = 0; I < Count; ++I) {
    std::vector<double> In;
    for (const fpcore::VarRange &VR : fpcore::sampleRanges(C))
      In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

/// Renders the analyzer's accumulated records as the comparison string.
std::string reportOf(const Herbgrind &HG) {
  return buildReport(HG.snapshot()).renderJson();
}

//===----------------------------------------------------------------------===//
// runOnBatch vs. sequential runOnInput
//===----------------------------------------------------------------------===//

/// Every corpus benchmark, full shadow: batched records, final verdict,
/// and final outputs must equal the sequential loop's, at lane counts
/// that divide the sample count and ones that do not.
TEST(Batched, FullShadowMatchesScalarOnCorpus) {
  AnalysisConfig Cfg;
  for (const fpcore::Core &C : fpcore::compilableCorpus()) {
    Program P = fpcore::compile(C);
    std::vector<std::vector<double>> Inputs = sampleInputs(C, 10, 0xbadc0de);
    Herbgrind Scalar(P, Cfg);
    for (const std::vector<double> &In : Inputs)
      Scalar.runOnInput(In);
    for (size_t Lanes : {size_t(1), size_t(3), size_t(8), size_t(32)}) {
      Herbgrind Batched(P, Cfg);
      for (size_t I = 0; I < Inputs.size(); I += Lanes)
        Batched.runOnBatch(&Inputs[I],
                           std::min(Lanes, Inputs.size() - I));
      ASSERT_EQ(reportOf(Scalar), reportOf(Batched))
          << C.Name << " lanes=" << Lanes;
      ASSERT_EQ(Scalar.lastRunSuspect(), Batched.lastRunSuspect()) << C.Name;
      ASSERT_EQ(Scalar.lastOutputs().size(), Batched.lastOutputs().size());
      for (size_t I = 0; I < Scalar.lastOutputs().size(); ++I) {
        uint64_t WantBits, GotBits;
        std::memcpy(&WantBits, &Scalar.lastOutputs()[I].F64, sizeof WantBits);
        std::memcpy(&GotBits, &Batched.lastOutputs()[I].F64, sizeof GotBits);
        ASSERT_EQ(WantBits, GotBits) << C.Name;
      }
      // The cost mirror: a batch executes exactly the scalar loop's
      // shadow ops, just grouped (and its step ceiling per lane).
      ASSERT_EQ(Scalar.stats().ShadowOpsExecuted,
                Batched.stats().ShadowOpsExecuted)
          << C.Name << " lanes=" << Lanes;
    }
  }
}

/// Predicate-only mode takes the SoA fast path on straight-line F64
/// programs; per-lane verdicts must equal each input's scalar verdict.
TEST(Batched, PredicateSoAVerdictsMatchScalar) {
  AnalysisConfig Cfg;
  Cfg.PredicateOnly = true;
  size_t SoACovered = 0;
  for (const fpcore::Core &C : fpcore::compilableCorpus()) {
    Program P = fpcore::compile(C);
    std::vector<std::vector<double>> Inputs = sampleInputs(C, 10, 0xfeed);
    Herbgrind Scalar(P, Cfg);
    std::vector<uint8_t> Want;
    for (const std::vector<double> &In : Inputs) {
      Scalar.runOnInput(In);
      Want.push_back(Scalar.lastRunSuspect() ? 1 : 0);
    }
    Herbgrind Batched(P, Cfg);
    // Loop benchmarks are not lockstep-batchable (runOnBatch falls back
    // to the sequential path for them); straight-line F64 ones take the
    // SoA fast path, and both must produce identical verdicts.
    if (Batched.soaBatchable()) {
      EXPECT_TRUE(Batched.lockstepBatchable()) << C.Name;
      ++SoACovered;
    }
    for (size_t I = 0; I < Inputs.size(); I += 3) {
      size_t N = std::min<size_t>(3, Inputs.size() - I);
      Batched.runOnBatch(&Inputs[I], N);
      ASSERT_EQ(Batched.laneSuspects().size(), N) << C.Name;
      for (size_t L = 0; L < N; ++L)
        ASSERT_EQ(Want[I + L] != 0, Batched.laneSuspects()[L] != 0)
            << C.Name << " lane " << L;
    }
    ASSERT_EQ(reportOf(Scalar), reportOf(Batched)) << C.Name;
  }
  // The corpus is straight-line F64 throughout; if nothing took the SoA
  // path this test stopped covering the tentpole.
  EXPECT_GT(SoACovered, 0u);
}

/// Native kernels: Context::runBatch must accumulate the records N
/// run() calls would, with matching per-lane tier-0 verdicts.
TEST(Batched, NativeRunBatchMatchesScalar) {
  for (bool Predicate : {false, true}) {
    AnalysisConfig Cfg;
    Cfg.PredicateOnly = Predicate;
    for (const native::Kernel &K : diffharness::randomKernels(0x5eed, 6)) {
      std::vector<std::vector<double>> Inputs;
      Rng R(0xabc);
      for (size_t I = 0; I < 10; ++I) {
        std::vector<double> In;
        for (const native::Kernel::InputRange &IR : K.Inputs)
          In.push_back(R.betweenOrdinals(IR.Lo, IR.Hi));
        Inputs.push_back(std::move(In));
      }
      native::Context Scalar(Cfg);
      std::vector<uint8_t> Want;
      for (const std::vector<double> &In : Inputs) {
        Scalar.run(K, In);
        Want.push_back(Scalar.lastRunSuspect() ? 1 : 0);
      }
      native::Context Batched(Cfg);
      std::vector<uint8_t> Suspects;
      for (size_t I = 0; I < Inputs.size(); I += 4) {
        size_t N = std::min<size_t>(4, Inputs.size() - I);
        Batched.runBatch(K, &Inputs[I], N, &Suspects);
        ASSERT_EQ(Suspects.size(), N);
        for (size_t L = 0; L < N; ++L)
          ASSERT_EQ(Want[I + L] != 0, Suspects[L] != 0) << K.Name;
      }
      ASSERT_EQ(buildReport(Scalar.snapshot()).renderJson(),
                buildReport(Batched.snapshot()).renderJson())
          << K.Name << (Predicate ? " predicate" : " full");
    }
  }
}

//===----------------------------------------------------------------------===//
// Engine sweeps: --batch is invisible in the report bytes
//===----------------------------------------------------------------------===//

TEST(Batched, EngineSweepByteIdenticalAcrossLanesJobsTiers) {
  std::vector<fpcore::Core> Cores = diffharness::randomCores(0x77, 4);
  std::vector<native::Kernel> Kernels = diffharness::randomKernels(0x77, 2);
  engine::EngineConfig Base;
  Base.SamplesPerBenchmark = 10; // 3 shards of 4,4,2: remainders everywhere
  Base.ShardSize = 4;
  Base.Jobs = 1;
  for (engine::TierMode Tier : {engine::TierMode::Full,
                                engine::TierMode::Confirm,
                                engine::TierMode::Fast}) {
    engine::EngineConfig Cfg = Base;
    Cfg.Tier = Tier;
    std::string Want = diffharness::sweepJson(Cores, Kernels, Cfg);
    for (unsigned Lanes : {1u, 3u, 8u, 32u}) {
      for (unsigned Jobs : {1u, 4u}) {
        Cfg.BatchLanes = Lanes;
        Cfg.Jobs = Jobs;
        ASSERT_EQ(Want, diffharness::sweepJson(Cores, Kernels, Cfg))
            << "tier=" << static_cast<int>(Tier) << " lanes=" << Lanes
            << " jobs=" << Jobs;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// evalDoubleBatch: bitwise equality with evalDouble
//===----------------------------------------------------------------------===//

void checkEvalBatch(const std::string &Text, unsigned NumVars,
                    uint64_t Seed) {
  fpcore::ParseResult P = fpcore::parse(Text);
  ASSERT_TRUE(P.Ok) << P.Error << " in " << Text;
  Rng R(Seed);
  const size_t Lanes = 7;
  std::vector<fpcore::DoubleEnv> Envs(Lanes);
  for (fpcore::DoubleEnv &Env : Envs)
    for (unsigned V = 0; V < NumVars; ++V)
      Env[format("v%u", V)] = R.betweenOrdinals(-100.0, 100.0);
  double Out[Lanes];
  fpcore::evalDoubleBatch(*P.Value.Body, Envs.data(), Lanes, Out);
  for (size_t L = 0; L < Lanes; ++L) {
    double Want = fpcore::evalDouble(*P.Value.Body, Envs[L]);
    // Bitwise comparison: NaNs must match as NaNs, -0.0 as -0.0.
    uint64_t WantBits, GotBits;
    std::memcpy(&WantBits, &Want, sizeof WantBits);
    std::memcpy(&GotBits, &Out[L], sizeof GotBits);
    ASSERT_EQ(WantBits, GotBits) << Text << " lane " << L;
  }
}

TEST(Batched, EvalDoubleBatchBitwiseEqual) {
  // Straight arithmetic (the batched path proper), n-ary folds,
  // constants, and every scalar-fallback node kind.
  checkEvalBatch("(FPCore (v0 v1) (- (+ v0 1) v1))", 2, 1);
  checkEvalBatch("(FPCore (v0 v1 v2) (+ v0 v1 v2 (* v0 v1 v2)))", 3, 2);
  checkEvalBatch("(FPCore (v0) (* (sqrt (fabs v0)) (sin (/ PI v0))))", 1, 3);
  checkEvalBatch("(FPCore (v0) (fma v0 E (log (fabs v0))))", 1, 4);
  checkEvalBatch("(FPCore (v0) (if (< v0 0) (- v0) (sqrt v0)))", 1, 5);
  checkEvalBatch("(FPCore (v0 v1) (let ([s (+ v0 v1)] [d (- v0 v1)]) "
                 "(* s d)))",
                 2, 6);
  checkEvalBatch("(FPCore (v0) (while (< i 3) ([i 0 (+ i 1)] "
                 "[acc v0 (* acc acc)]) acc))",
                 1, 7);
  // Division poles and domain edges: lanes straddling them must not
  // contaminate each other.
  checkEvalBatch("(FPCore (v0) (/ 1 (- v0 v0)))", 1, 8);
  checkEvalBatch("(FPCore (v0) (log v0))", 1, 9);
  // Many lanes with a non-trivial expression, exercising per-node
  // scratch reuse across a deeper tree.
  checkEvalBatch("(FPCore (v0 v1) (hypot (atan2 v0 v1) "
                 "(pow (fabs v0) (copysign 0.5 v1))))",
                 2, 10);
}

} // namespace
