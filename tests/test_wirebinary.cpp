//===- tests/test_wirebinary.cpp - HGB binary wire format -----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The binary backend's contract: (1) every document family round-trips
// through HGB byte-identically AND re-renders the exact JSON bytes the
// JSON backend emits -- the two backends are one schema traversal and
// cannot drift; (2) the sniffing parsers accept either format; (3) every
// truncation or corruption of a binary document fails cleanly (the
// caches treat that as a miss); (4) the decoder bounds nesting depth like
// the JSON parser; (5) a binary-cached sweep and a JSON-cached sweep warm
// each other and produce byte-identical reports; (6) mixed-format shard
// sets merge byte-identically to a direct sweep; (7) randomized report
// documents with NaN / infinities / subnormals / -0.0 round-trip in both
// formats.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/ResultCache.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/WireBinary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

Program cancellationKernel() {
  ProgramBuilder B;
  auto X = B.input(0);
  auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, B.constF64(1.0)), X);
  B.out(T);
  B.halt();
  return B.finish();
}

/// One real shard document, produced by actually analyzing something so
/// every schema branch (ops, spots, expressions, input summaries) is
/// populated.
ShardDoc sampleShard() {
  Program P = cancellationKernel();
  Herbgrind HG(P);
  // Above 2^53, (x + 1) - x cancels to 0 while the real value is 1:
  // maximal local error, so the report has spots to serialize.
  for (double X : {1e16, 2.5e17, 3.7e18, 1e16})
    HG.runOnInput({X});
  ShardDoc Doc;
  Doc.ConfigHash = "0123456789abcdef";
  Doc.Benchmark = "cancellation";
  Doc.BenchIndex = 3;
  Doc.ShardIndex = 1;
  Doc.RunBegin = 16;
  Doc.RunEnd = 32;
  Doc.Result = HG.snapshot();
  return Doc;
}

std::vector<fpcore::Core> smallCorpusSubset(size_t MaxBenchmarks) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus()) {
    if (!fpcore::isCompilable(C))
      continue;
    Cores.push_back(C.clone());
    if (Cores.size() >= MaxBenchmarks)
      break;
  }
  return Cores;
}

/// A scoped temp directory under the system temp root.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-test-" + Tag + "-" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  return Text;
}

void spew(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips and cross-renders
//===----------------------------------------------------------------------===//

TEST(WireBinary, ShardDocumentRoundTripsAndCrossRenders) {
  ShardDoc Doc = sampleShard();
  std::string Json = renderShardJson(Doc);
  std::string Bin = renderShardBinary(Doc);
  ASSERT_TRUE(wire::isBinary(Bin));
  ASSERT_FALSE(wire::isBinary(Json));
  EXPECT_LT(Bin.size(), Json.size());

  ShardDoc FromBin, FromJson;
  std::string Err;
  ASSERT_TRUE(parseShard(Bin, FromBin, Err)) << Err;
  ASSERT_TRUE(parseShard(Json, FromJson, Err)) << Err;

  // Both parses re-render byte-identically in BOTH formats: the binary
  // path loses nothing the JSON path carries, and vice versa.
  EXPECT_EQ(renderShardJson(FromBin), Json);
  EXPECT_EQ(renderShardJson(FromJson), Json);
  EXPECT_EQ(renderShardBinary(FromBin), Bin);
  EXPECT_EQ(renderShardBinary(FromJson), Bin);

  // The renderShard dispatcher agrees with the direct renders.
  EXPECT_EQ(renderShard(Doc, WireEncoding::Json), Json);
  EXPECT_EQ(renderShard(Doc, WireEncoding::Binary), Bin);
}

TEST(WireBinary, SniffedHeaderCarriesFamilyAndVersion) {
  std::string Bin = renderShardBinary(sampleShard());
  wire::Family F;
  int Major, Minor;
  ASSERT_TRUE(wire::sniffBinary(Bin, F, Major, Minor));
  EXPECT_EQ(F, wire::Family::Shard);
  EXPECT_EQ(Major, WireFormatMajor);
  EXPECT_EQ(Minor, WireFormatMinor);
}

TEST(WireBinary, ImproveDocumentRoundTripsAndCrossRenders) {
  ImproveDoc Doc;
  Doc.ConfigHash = "00ff00ff00ff00ff";
  Doc.ImproveHash = "samples=256|seed=51966";
  Doc.ExprIdentity = "(- (+ x0 1) x0)";
  Doc.SpecIdentity = "x0 in [1e8, 1e15]";
  Doc.Record.Original = "(- (+ x0 1) x0)";
  Doc.Record.Rewritten = "1";
  Doc.Record.ErrorBefore = 31.5;
  Doc.Record.ErrorAfter = 0.0;
  Doc.Record.HadSignificantError = true;
  Doc.Record.Improved = true;

  std::string Json = renderImproveDocJson(Doc);
  std::string Bin = renderImproveDocBinary(Doc);
  ImproveDoc Back;
  std::string Err;
  ASSERT_TRUE(parseImproveDoc(Bin, Back, Err)) << Err;
  EXPECT_EQ(renderImproveDocJson(Back), Json);
  EXPECT_EQ(renderImproveDocBinary(Back), Bin);
  ASSERT_TRUE(parseImproveDoc(Json, Back, Err)) << Err;
  EXPECT_EQ(renderImproveDocBinary(Back), Bin);
}

TEST(WireBinary, BatchReportAndTelemetryRoundTripCorpusWide) {
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;
  Engine Eng(Cfg);
  BatchResult Res = Eng.run(smallCorpusSubset(6));

  std::string Json = Res.renderWire(WireEncoding::Json);
  std::string Bin = Res.renderWire(WireEncoding::Binary);
  EXPECT_EQ(Res.renderJson(), Json);

  BatchReportDoc Doc;
  std::string Err;
  ASSERT_TRUE(parseBatchReport(Bin, Doc, Err)) << Err;
  EXPECT_EQ(renderBatchReportJson(Doc), Json);
  EXPECT_EQ(renderBatchReportBinary(Doc), Bin);
  BatchReportDoc Doc2;
  ASSERT_TRUE(parseBatchReport(Json, Doc2, Err)) << Err;
  EXPECT_EQ(renderBatchReportBinary(Doc2), Bin);

  // Telemetry rides the same codec with its own family and version.
  TelemetryDoc Tel;
  Tel.Metrics = metrics::snapshot();
  std::string TelJson = renderTelemetryJson(Tel);
  std::string TelBin = renderTelemetryBinary(Tel);
  TelemetryDoc TelBack;
  ASSERT_TRUE(parseTelemetry(TelBin, TelBack, Err)) << Err;
  EXPECT_EQ(renderTelemetryJson(TelBack), TelJson);
  EXPECT_EQ(renderTelemetryBinary(TelBack), TelBin);
  wire::Family F;
  int Major, Minor;
  ASSERT_TRUE(wire::sniffBinary(TelBin, F, Major, Minor));
  EXPECT_EQ(F, wire::Family::Telemetry);
  EXPECT_EQ(Major, TelemetryFormatMajor);
}

TEST(WireBinary, BareReportRoundTripsAndCrossRenders) {
  ShardDoc Doc = sampleShard();
  Report R = buildReport(Doc.Result);
  ASSERT_FALSE(R.Spots.empty());
  std::string Json = R.renderJson();
  std::string Bin = renderReportBinary(R);

  Report Back;
  std::string Err;
  ASSERT_TRUE(parseReportDoc(Bin, Back, Err)) << Err;
  EXPECT_EQ(Back.renderJson(), Json);
  EXPECT_EQ(renderReportBinary(Back), Bin);
  Report Back2;
  ASSERT_TRUE(parseReportDoc(Json, Back2, Err)) << Err;
  EXPECT_EQ(renderReportBinary(Back2), Bin);
}

//===----------------------------------------------------------------------===//
// Malformed input
//===----------------------------------------------------------------------===//

TEST(WireBinary, EveryTruncationFailsCleanly) {
  std::string Bin = renderShardBinary(sampleShard());
  ShardDoc Out;
  std::string Err;
  for (size_t Len = 0; Len < Bin.size(); ++Len) {
    EXPECT_FALSE(parseShard(Bin.substr(0, Len), Out, Err))
        << "truncation to " << Len << " of " << Bin.size()
        << " bytes parsed anyway";
  }
}

TEST(WireBinary, RejectsBadMagicFamilyCodecAndTrailingGarbage) {
  std::string Bin = renderShardBinary(sampleShard());
  ShardDoc Out;
  std::string Err;

  std::string BadMagic = Bin;
  BadMagic[0] = '{';
  EXPECT_FALSE(parseShard(BadMagic, Out, Err));

  // magic + family 9 + version 1.1 + raw codec: unknown family tag.
  std::string BadFamily(reinterpret_cast<const char *>(wire::HgbMagic), 4);
  BadFamily += static_cast<char>(9);
  BadFamily += static_cast<char>(1);
  BadFamily += static_cast<char>(1);
  BadFamily += static_cast<char>(0);
  EXPECT_FALSE(parseShard(BadFamily, Out, Err));
  EXPECT_NE(Err.find("family"), std::string::npos) << Err;

  // A wrong family with a valid header must be rejected by the typed
  // parser ("this is an improve doc, not a shard").
  ImproveDoc IDoc;
  IDoc.ConfigHash = "c";
  std::string Improve = renderImproveDocBinary(IDoc);
  EXPECT_FALSE(parseShard(Improve, Out, Err));

  // Unknown codec byte (the byte right after magic + 3 version varints).
  std::string BadCodec = Bin;
  BadCodec[7] = static_cast<char>(0x7e);
  EXPECT_FALSE(parseShard(BadCodec, Out, Err));
  EXPECT_NE(Err.find("codec"), std::string::npos) << Err;

  // An unknown major version is a hard error, like the JSON envelope's.
  std::string BadMajor = Bin;
  BadMajor[5] = static_cast<char>(WireFormatMajor + 9);
  EXPECT_FALSE(parseShard(BadMajor, Out, Err));
  EXPECT_NE(Err.find("major version"), std::string::npos) << Err;

  std::string Trailing = Bin + "x";
  EXPECT_FALSE(parseShard(Trailing, Out, Err));
}

TEST(WireBinary, DecoderBoundsNestingDepth) {
  // Hand-drive the codec: 600 nested single-element arrays encode fine,
  // but the decoder must refuse to recurse past its depth bound (the
  // same contract the JSON parser enforces).
  wire::BinaryEncoder Enc(wire::Family::Report, WireFormatMajor,
                          WireFormatMinor);
  const unsigned Depth = 600;
  for (unsigned I = 0; I < Depth; ++I)
    Enc.beginArray(1);
  Enc.u64(7);
  for (unsigned I = 0; I < Depth; ++I)
    Enc.endArray();
  std::string Doc = Enc.take();

  wire::BinaryDecoder Dec(Doc);
  ASSERT_TRUE(Dec.ok());
  unsigned Reached = 0;
  uint64_t Count;
  while (Reached < Depth && Dec.beginArray(Count))
    ++Reached;
  EXPECT_LT(Reached, Depth);
  EXPECT_GE(Reached, 256u);
  EXPECT_NE(Dec.error().find("deep"), std::string::npos) << Dec.error();
}

//===----------------------------------------------------------------------===//
// The result cache across formats
//===----------------------------------------------------------------------===//

TEST(WireBinary, BinaryAndJsonCachedSweepsWarmEachOther) {
  TempDir Dir("xformat-cache");
  std::vector<fpcore::Core> Cores = smallCorpusSubset(4);

  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;
  Cfg.CacheDir = Dir.Path;
  Cfg.WireFormat = WireEncoding::Binary;

  Engine Cold(Cfg);
  BatchResult First = Cold.run(Cores);
  EXPECT_GT(First.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(First.Stats.CachedShards, 0u);

  // Entries landed as .hgb.
  bool SawHgb = false;
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path))
    SawHgb |= E.path().extension() == ".hgb";
  EXPECT_TRUE(SawHgb);

  // A JSON-configured sweep over the same cache analyzes nothing: the
  // wire format is not part of the cache identity and lookups sniff.
  Cfg.WireFormat = WireEncoding::Json;
  Engine Warm(Cfg);
  BatchResult Second = Warm.run(Cores);
  EXPECT_EQ(Second.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(Second.Stats.CachedShards, Second.Stats.Shards);
  EXPECT_EQ(Second.renderJson(), First.renderJson());
}

TEST(WireBinary, TruncatedCacheEntriesAreMissesForBothFormats) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(3);
  for (WireEncoding Enc : {WireEncoding::Json, WireEncoding::Binary}) {
    TempDir Dir(Enc == WireEncoding::Json ? "trunc-json" : "trunc-hgb");
    EngineConfig Cfg;
    Cfg.Jobs = 2;
    Cfg.SamplesPerBenchmark = 4;
    Cfg.ShardSize = 2;
    Cfg.CacheDir = Dir.Path;
    Cfg.WireFormat = Enc;

    Engine Cold(Cfg);
    BatchResult First = Cold.run(Cores);
    EXPECT_GT(First.Stats.AnalyzedShards, 0u);

    // Chop every entry in half: atomic stores can never produce this,
    // but a full disk or a copied cache can.
    for (const auto &E : std::filesystem::directory_iterator(Dir.Path)) {
      std::string Text = slurp(E.path().string());
      spew(E.path().string(), Text.substr(0, Text.size() / 2));
    }

    Engine Damaged(Cfg);
    BatchResult Second = Damaged.run(Cores);
    EXPECT_EQ(Second.Stats.CachedShards, 0u);
    EXPECT_EQ(Second.Stats.AnalyzedShards, Second.Stats.Shards);
    EXPECT_EQ(Second.renderJson(), First.renderJson());

    // The re-analysis overwrote the damage: a third run is fully warm.
    Engine Healed(Cfg);
    BatchResult Third = Healed.run(Cores);
    EXPECT_EQ(Third.Stats.AnalyzedShards, 0u);
    EXPECT_EQ(Third.renderJson(), First.renderJson());
  }
}

TEST(WireBinary, GcPrunesBinaryEntries) {
  TempDir Dir("gc-hgb");
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;
  Cfg.CacheDir = Dir.Path;
  Cfg.WireFormat = WireEncoding::Binary;
  Engine Eng(Cfg);
  Eng.run(smallCorpusSubset(3));

  CacheGcStats Stats;
  std::string Err;
  ASSERT_TRUE(gcCacheDir(Dir.Path, 0, Stats, Err)) << Err;
  EXPECT_GT(Stats.Entries, 0u);
  EXPECT_EQ(Stats.PrunedEntries, Stats.Entries);
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path))
    ADD_FAILURE() << "entry survived a zero-byte cap: " << E.path();
}

//===----------------------------------------------------------------------===//
// Mixed-format merging
//===----------------------------------------------------------------------===//

TEST(WireBinary, MixedFormatShardSetMergesByteIdentically) {
  std::vector<fpcore::Core> Cores = smallCorpusSubset(4);
  EngineConfig Cfg;
  Cfg.Jobs = 2;
  Cfg.SamplesPerBenchmark = 4;
  Cfg.ShardSize = 2;

  TempDir Emit("mixed-emit");
  EngineConfig EmitCfg = Cfg;
  EmitCfg.EmitShardDir = Emit.Path;
  Engine Direct(EmitCfg);
  BatchResult Reference = Direct.run(Cores);

  // Re-encode every other emitted document as HGB, then merge the mixed
  // set: same report bytes as the direct sweep.
  std::vector<std::string> Paths;
  for (const auto &E : std::filesystem::directory_iterator(Emit.Path))
    Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_GT(Paths.size(), 1u);

  std::vector<ShardDoc> Docs;
  std::string Err;
  for (size_t I = 0; I < Paths.size(); ++I) {
    std::string Text = slurp(Paths[I]);
    ShardDoc Doc;
    ASSERT_TRUE(parseShard(Text, Doc, Err)) << Paths[I] << ": " << Err;
    if (I % 2 == 1) {
      std::string Bin = renderShardBinary(Doc);
      ShardDoc Again;
      ASSERT_TRUE(parseShard(Bin, Again, Err)) << Err;
      Docs.push_back(std::move(Again));
    } else {
      Docs.push_back(std::move(Doc));
    }
  }

  BatchResult Merged;
  ASSERT_TRUE(mergeShards(std::move(Docs), Merged, Err)) << Err;
  EXPECT_EQ(Merged.renderJson(), Reference.renderJson());
}

//===----------------------------------------------------------------------===//
// Randomized documents (special doubles included)
//===----------------------------------------------------------------------===//

namespace {

double specialDouble(Rng &R) {
  switch (R.nextBelow(8)) {
  case 0:
    return std::numeric_limits<double>::quiet_NaN();
  case 1:
    return std::numeric_limits<double>::infinity();
  case 2:
    return -std::numeric_limits<double>::infinity();
  case 3:
    return -0.0;
  case 4:
    return std::numeric_limits<double>::denorm_min(); // 5e-324
  case 5:
    return -2.2250738585072009e-308; // largest-magnitude subnormal
  default:
    return R.anyFiniteDouble();
  }
}

Report randomReport(Rng &R) {
  Report Rep;
  size_t NumSpots = R.nextBelow(4);
  for (size_t S = 0; S < NumSpots; ++S) {
    SpotReport SR;
    SR.PC = static_cast<uint32_t>(R.nextBelow(1000));
    SR.Kind = static_cast<SpotKind>(R.nextBelow(3));
    SR.Loc = SourceLoc("kernel.cpp", static_cast<int>(R.nextBelow(500)),
                       "fn" + std::to_string(R.nextBelow(3)));
    SR.Executions = R.nextBelow(1 << 20);
    SR.Erroneous = R.nextBelow(SR.Executions + 1);
    SR.MaxErrorBits = specialDouble(R);
    size_t NumCauses = R.nextBelow(3);
    for (size_t C = 0; C < NumCauses; ++C) {
      RootCauseReport RC;
      RC.PC = static_cast<uint32_t>(R.nextBelow(1000));
      RC.Loc = SR.Loc;
      RC.FPCore = "(FPCore (x0)\n  (- (+ x0 1) x0))";
      RC.Body = "(- (+ x0 1) x0)";
      RC.NumVars = 1;
      RC.OpCount = static_cast<unsigned>(R.nextBelow(50));
      RC.Flagged = R.nextBelow(1 << 16);
      RC.MaxLocalError = specialDouble(R);
      RC.AvgLocalError = specialDouble(R);
      RC.ExampleInput = "(" + std::to_string(R.nextUnit()) + ")";
      SR.RootCauses.push_back(std::move(RC));
    }
    Rep.Spots.push_back(std::move(SR));
  }
  size_t NumImprovements = R.nextBelow(3);
  for (size_t I = 0; I < NumImprovements; ++I) {
    ImproveRecord IR;
    IR.PC = static_cast<uint32_t>(R.nextBelow(1000));
    IR.Original = "(- (+ x0 1) x0)";
    IR.Rewritten = R.chance(1, 2) ? "1" : "";
    IR.ErrorBefore = specialDouble(R);
    IR.ErrorAfter = specialDouble(R);
    IR.HadSignificantError = R.chance(1, 2);
    IR.Improved = R.chance(1, 2);
    Rep.Improvements.push_back(std::move(IR));
  }
  return Rep;
}

} // namespace

TEST(WireBinary, RandomizedReportsRoundTripInBothFormats) {
  Rng R(0x5eed);
  for (int Iter = 0; Iter < 200; ++Iter) {
    Report Rep = randomReport(R);
    std::string Json = Rep.renderJson();
    std::string Bin = renderReportBinary(Rep);

    Report FromJson, FromBin;
    std::string Err;
    ASSERT_TRUE(parseReportJson(Json, FromJson, Err))
        << "iter " << Iter << ": " << Err;
    ASSERT_TRUE(parseReportDoc(Bin, FromBin, Err))
        << "iter " << Iter << ": " << Err;

    // JSON re-render is byte-stable through either decode path (NaN
    // payloads canonicalize to the NAN token either way).
    EXPECT_EQ(FromJson.renderJson(), Json) << "iter " << Iter;
    EXPECT_EQ(FromBin.renderJson(), Json) << "iter " << Iter;
    // Binary re-render of the binary decode is exact to the byte: raw
    // IEEE-754 storage preserves even NaN payloads.
    EXPECT_EQ(renderReportBinary(FromBin), Bin) << "iter " << Iter;
  }
}
