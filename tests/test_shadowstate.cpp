//===- tests/test_shadowstate.cpp - Shadow storage unit tests -------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "shadow/ShadowState.h"

#include <gtest/gtest.h>

using namespace herbgrind;

namespace {

struct ShadowFixture : ::testing::Test {
  TraceArena Arena{24, 5};
  InfluenceSets Sets;
  ShadowState State{Arena, Sets, /*NumTemps=*/8};

  ShadowValue *mk(double V) {
    return State.create(BigFloat::fromDouble(V), Arena.leaf(V), Sets.empty(),
                        ValueType::F64);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Influence sets
//===----------------------------------------------------------------------===//

TEST(InfluenceSets, EmptyIsShared) {
  InfluenceSets S;
  EXPECT_EQ(S.empty(), S.empty());
  EXPECT_TRUE(S.empty()->empty());
}

TEST(InfluenceSets, SingletonsIntern) {
  InfluenceSets S;
  EXPECT_EQ(S.singleton(5), S.singleton(5));
  EXPECT_NE(S.singleton(5), S.singleton(6));
}

TEST(InfluenceSets, UnionIsSortedAndDeduplicated) {
  InfluenceSets S;
  const InflSet *A = S.insert(S.singleton(5), 9);
  const InflSet *B = S.insert(S.singleton(9), 2);
  const InflSet *U = S.unionOf(A, B);
  EXPECT_EQ(*U, (InflSet{2, 5, 9}));
}

TEST(InfluenceSets, UnionIsMemoizedAndInterned) {
  InfluenceSets S;
  const InflSet *A = S.singleton(1);
  const InflSet *B = S.singleton(2);
  const InflSet *U1 = S.unionOf(A, B);
  const InflSet *U2 = S.unionOf(B, A); // canonicalized order
  EXPECT_EQ(U1, U2);
  // Same content built another way interns to the same set.
  EXPECT_EQ(S.insert(S.singleton(1), 2), U1);
}

TEST(InfluenceSets, UnionWithSelfAndEmpty) {
  InfluenceSets S;
  const InflSet *A = S.singleton(3);
  EXPECT_EQ(S.unionOf(A, A), A);
  EXPECT_EQ(S.unionOf(A, S.empty()), A);
  EXPECT_EQ(S.unionOf(S.empty(), A), A);
}

TEST(InfluenceSets, InsertExistingIsIdentity) {
  InfluenceSets S;
  const InflSet *A = S.insert(S.singleton(1), 2);
  EXPECT_EQ(S.insert(A, 1), A);
  EXPECT_EQ(S.insert(A, 2), A);
}

//===----------------------------------------------------------------------===//
// Shadow temps
//===----------------------------------------------------------------------===//

TEST_F(ShadowFixture, TempLanesIndependent) {
  ShadowValue *A = mk(1.0);
  ShadowValue *B = mk(2.0);
  State.setTempLane(0, 0, A);
  State.setTempLane(0, 1, B);
  EXPECT_EQ(State.tempLane(0, 0), A);
  EXPECT_EQ(State.tempLane(0, 1), B);
  EXPECT_EQ(State.tempLane(1, 0), nullptr);
  State.clearTemp(0);
  EXPECT_EQ(State.tempLane(0, 0), nullptr);
  EXPECT_EQ(State.liveValues(), 0u);
}

TEST_F(ShadowFixture, SetLaneReleasesOldValue) {
  State.setTempLane(0, 0, mk(1.0));
  State.setTempLane(0, 0, mk(2.0));
  EXPECT_EQ(State.liveValues(), 1u);
  State.clearTemp(0);
  EXPECT_EQ(State.liveValues(), 0u);
}

TEST_F(ShadowFixture, SharingBumpsRefcount) {
  ShadowValue *A = mk(1.0);
  State.setTempLane(0, 0, A);
  State.setTempLane(1, 0, State.share(A));
  EXPECT_EQ(State.liveValues(), 1u); // one object, two references
  State.clearTemp(0);
  EXPECT_EQ(State.tempLane(1, 0), A);
  State.clearTemp(1);
  EXPECT_EQ(State.liveValues(), 0u);
}

//===----------------------------------------------------------------------===//
// Thread-state shadow: byte overlap semantics (Section 5.2)
//===----------------------------------------------------------------------===//

TEST_F(ShadowFixture, ThreadStateExactMatch) {
  State.putThreadState(16, 8, mk(1.5));
  ASSERT_NE(State.getThreadState(16, 8), nullptr);
  EXPECT_EQ(State.getThreadState(16, 8)->Real.toDouble(), 1.5);
}

TEST_F(ShadowFixture, ThreadStateMisalignedReadSeesNothing) {
  State.putThreadState(16, 8, mk(1.5));
  EXPECT_EQ(State.getThreadState(20, 8), nullptr);
  EXPECT_EQ(State.getThreadState(16, 4), nullptr); // size mismatch too
}

TEST_F(ShadowFixture, OverlappingWriteInvalidates) {
  State.putThreadState(16, 8, mk(1.5));
  State.putThreadState(20, 8, mk(2.5)); // overlaps bytes 20-23
  EXPECT_EQ(State.getThreadState(16, 8), nullptr);
  ASSERT_NE(State.getThreadState(20, 8), nullptr);
}

TEST_F(ShadowFixture, AdjacentWritesDoNotInvalidate) {
  State.putThreadState(16, 8, mk(1.5));
  State.putThreadState(24, 8, mk(2.5));
  ASSERT_NE(State.getThreadState(16, 8), nullptr);
  ASSERT_NE(State.getThreadState(24, 8), nullptr);
}

TEST_F(ShadowFixture, NullPutJustInvalidates) {
  State.putThreadState(16, 8, mk(1.5));
  State.putThreadState(16, 8, nullptr);
  EXPECT_EQ(State.getThreadState(16, 8), nullptr);
  EXPECT_EQ(State.liveValues(), 0u);
}

//===----------------------------------------------------------------------===//
// Memory shadow (the lazy hash table of Section 5.2)
//===----------------------------------------------------------------------===//

TEST_F(ShadowFixture, MemoryRoundTrip) {
  State.putMemory(0x1000, 8, mk(3.25));
  ASSERT_NE(State.getMemory(0x1000, 8), nullptr);
  EXPECT_EQ(State.getMemory(0x1000, 8)->Real.toDouble(), 3.25);
  EXPECT_EQ(State.shadowedMemoryCells(), 1u);
}

TEST_F(ShadowFixture, MemoryOverlapInvalidation) {
  State.putMemory(0x1000, 8, mk(1.0));
  State.putMemory(0x1004, 8, mk(2.0)); // straddles the first cell
  EXPECT_EQ(State.getMemory(0x1000, 8), nullptr);
  ASSERT_NE(State.getMemory(0x1004, 8), nullptr);
}

TEST_F(ShadowFixture, MemoryPartialOverwriteKillsWholeCell) {
  State.putMemory(0x1000, 8, mk(1.0));
  State.invalidateMemory(0x1006, 2); // last two bytes
  EXPECT_EQ(State.getMemory(0x1000, 8), nullptr);
}

TEST_F(ShadowFixture, SimdLaneCellsReadableAtOffset) {
  // A 16-byte vector stored as two 8-byte lane cells (how the analysis
  // stores V2F64), then a scalar read of the second lane.
  State.putMemory(0x2000, 8, mk(1.0));
  State.putMemory(0x2008, 8, mk(2.0));
  ASSERT_NE(State.getMemory(0x2008, 8), nullptr);
  EXPECT_EQ(State.getMemory(0x2008, 8)->Real.toDouble(), 2.0);
}

TEST_F(ShadowFixture, F32CellsUseSize4) {
  ShadowValue *F = State.create(BigFloat::fromFloat(1.5f), Arena.leaf(1.5),
                                Sets.empty(), ValueType::F32);
  State.putMemory(0x3000, 4, F);
  ASSERT_NE(State.getMemory(0x3000, 4), nullptr);
  EXPECT_EQ(State.getMemory(0x3000, 8), nullptr);
}

//===----------------------------------------------------------------------===//
// Trace ownership through shadow values
//===----------------------------------------------------------------------===//

TEST_F(ShadowFixture, ReleasingShadowReleasesTrace) {
  size_t Before = Arena.liveNodes();
  ShadowValue *A = mk(4.0);
  EXPECT_EQ(Arena.liveNodes(), Before + 1);
  State.release(A);
  EXPECT_EQ(Arena.liveNodes(), Before);
}
