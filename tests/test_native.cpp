//===- tests/test_native.cpp - Native frontend parity suite ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The native frontend's contract: (1) for the same math on the same
// inputs, a native::Real run and a ProgramBuilder IR run produce
// semantically identical reports -- same root-cause operations at the
// same source locations with the same error bits; (2) dynamic executions
// of one source operation merge into one record, loops included; (3) a
// native kernel swept through engine::Engine is byte-identical across
// --jobs values, across reset/reuse, and across cold/warm result caches.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "fpcore/Corpus.h"
#include "native/Context.h"
#include "native/Kernel.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace herbgrind;
using native::Real;

namespace {

//===----------------------------------------------------------------------===//
// Semantic report equality (everything but the pc numbering, which is an
// interpreter program counter on one side and a content hash on the other)
//===----------------------------------------------------------------------===//

const RootCauseReport *findCause(const SpotReport &SR,
                                 const std::string &Loc) {
  for (const RootCauseReport &RC : SR.RootCauses)
    if (RC.Loc.str() == Loc)
      return &RC;
  return nullptr;
}

const SpotReport *findSpot(const Report &R, SpotKind Kind,
                           const std::string &Loc) {
  for (const SpotReport &SR : R.Spots)
    if (SR.Kind == Kind && SR.Loc.str() == Loc)
      return &SR;
  return nullptr;
}

/// Asserts that two reports describe the same analysis outcome: spots
/// matched by (kind, location) with equal counters and error bits, and
/// root causes matched by location with equal expressions, preconditions,
/// flag counts, and example inputs.
void expectSemanticallyEqual(const Report &Native, const Report &Ir) {
  ASSERT_EQ(Native.Spots.size(), Ir.Spots.size());
  for (const SpotReport &NS : Native.Spots) {
    SCOPED_TRACE("spot @ " + NS.Loc.str());
    const SpotReport *IS = findSpot(Ir, NS.Kind, NS.Loc.str());
    ASSERT_NE(IS, nullptr);
    EXPECT_EQ(NS.Executions, IS->Executions);
    EXPECT_EQ(NS.Erroneous, IS->Erroneous);
    EXPECT_EQ(NS.MaxErrorBits, IS->MaxErrorBits);
    ASSERT_EQ(NS.RootCauses.size(), IS->RootCauses.size());
    for (const RootCauseReport &NC : NS.RootCauses) {
      SCOPED_TRACE("cause @ " + NC.Loc.str());
      const RootCauseReport *IC = findCause(*IS, NC.Loc.str());
      ASSERT_NE(IC, nullptr);
      EXPECT_EQ(NC.Body, IC->Body);
      EXPECT_EQ(NC.FPCore, IC->FPCore);
      EXPECT_EQ(NC.NumVars, IC->NumVars);
      EXPECT_EQ(NC.Flagged, IC->Flagged);
      EXPECT_EQ(NC.MaxLocalError, IC->MaxLocalError);
      EXPECT_EQ(NC.AvgLocalError, IC->AvgLocalError);
      EXPECT_EQ(NC.ExampleInput, IC->ExampleInput);
    }
  }
}

SourceLoc loc(int Line) { return SourceLoc("parity.c", Line, "f"); }

//===----------------------------------------------------------------------===//
// Parity 1: (x + 1) - x, the canonical cancellation
//===----------------------------------------------------------------------===//

const std::vector<double> CancelInputs = {2.0, 1e8, 1e15, 1e16, 4e16};

Report cancelNative(const AnalysisConfig &Cfg) {
  native::Context C(Cfg);
  for (double V : CancelInputs) {
    Real X = C.input(0, V);
    C.setLoc(loc(1));
    Real Sum = X + 1.0;
    C.setLoc(loc(2));
    Real Diff = Sum - X;
    C.setLoc(loc(3));
    C.output(Diff);
  }
  return buildReport(C);
}

Report cancelIr(const AnalysisConfig &Cfg) {
  ProgramBuilder B;
  auto X = B.input(0);
  B.setLoc(loc(1));
  auto Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  B.setLoc(loc(2));
  auto Diff = B.op(Opcode::SubF64, Sum, X);
  B.setLoc(loc(3));
  B.out(Diff);
  B.halt();
  Herbgrind HG(B.finish(), Cfg);
  for (double V : CancelInputs)
    HG.runOnInput({V});
  return buildReport(HG);
}

TEST(NativeParity, Cancellation) {
  AnalysisConfig Cfg;
  Report N = cancelNative(Cfg), I = cancelIr(Cfg);
  expectSemanticallyEqual(N, I);
  // The report is non-trivial: the subtraction is blamed.
  ASSERT_EQ(N.Spots.size(), 1u);
  ASSERT_FALSE(N.Spots[0].RootCauses.empty());
  EXPECT_EQ(N.Spots[0].RootCauses[0].Loc.str(), loc(2).str());
}

//===----------------------------------------------------------------------===//
// Parity 2: sqrt(x*x + y*y) - x, cancellation behind a sqrt
//===----------------------------------------------------------------------===//

const std::vector<std::vector<double>> DistInputs = {
    {3.0, 4.0}, {1e8, 1.0}, {3e7, 2.0}, {1e8, 0.5}};

Report distNative(const AnalysisConfig &Cfg) {
  native::Context C(Cfg);
  for (const auto &In : DistInputs) {
    C.bindInputs(In.data(), In.size());
    Real X = Real::input(0), Y = Real::input(1);
    C.setLoc(loc(11));
    Real H = sqrt(X * X + Y * Y);
    C.setLoc(loc(12));
    Real D = H - X;
    C.setLoc(loc(13));
    C.output(D);
  }
  return buildReport(C);
}

Report distIr(const AnalysisConfig &Cfg) {
  ProgramBuilder B;
  auto X = B.input(0);
  auto Y = B.input(1);
  B.setLoc(loc(11));
  auto H = B.op(Opcode::SqrtF64,
                B.op(Opcode::AddF64, B.op(Opcode::MulF64, X, X),
                     B.op(Opcode::MulF64, Y, Y)));
  B.setLoc(loc(12));
  auto D = B.op(Opcode::SubF64, H, X);
  B.setLoc(loc(13));
  B.out(D);
  B.halt();
  Herbgrind HG(B.finish(), Cfg);
  for (const auto &In : DistInputs)
    HG.runOnInput(In);
  return buildReport(HG);
}

TEST(NativeParity, SqrtCancellation) {
  AnalysisConfig Cfg;
  expectSemanticallyEqual(distNative(Cfg), distIr(Cfg));
}

// The native x*x and y*y share one source line and opcode, so they merge
// into a single record -- the documented (location, opcode) identity. The
// IR build above inherits the same granularity through its shared setLoc,
// but records them at two pcs; the *reported* causes still agree because
// neither mul is erroneous. Check the native-side record shape directly.
TEST(NativeParity, SameLineSameOpcodeMerges) {
  AnalysisConfig Cfg;
  native::Context C(Cfg);
  std::vector<double> In = {3.0, 4.0};
  C.bindInputs(In.data(), In.size());
  Real X = Real::input(0), Y = Real::input(1);
  C.setLoc(loc(11));
  Real H = sqrt(X * X + Y * Y);
  C.output(H);
  unsigned Muls = 0;
  for (const auto &[PC, Rec] : C.opRecords())
    if (Rec.Op == Opcode::MulF64) {
      ++Muls;
      EXPECT_EQ(Rec.Executions, 2u); // both muls of the one evaluation
    }
  EXPECT_EQ(Muls, 1u);
}

//===----------------------------------------------------------------------===//
// Parity 3: sin^2 + cos^2 - 1, wrapped library calls
//===----------------------------------------------------------------------===//

const std::vector<double> TrigInputs = {0.5, 1.25, 2.0, 3.0};

Report trigNative(const AnalysisConfig &Cfg) {
  native::Context C(Cfg);
  for (double V : TrigInputs) {
    Real X = C.input(0, V);
    // One location per operation: the (location, opcode) identity then
    // corresponds 1:1 with the IR build's per-pc records.
    C.setLoc(loc(21));
    Real S = sin(X);
    C.setLoc(loc(22));
    Real Co = cos(X);
    C.setLoc(loc(23));
    Real S2 = S * S;
    C.setLoc(loc(24));
    Real C2 = Co * Co;
    C.setLoc(loc(25));
    Real Sum = S2 + C2;
    C.setLoc(loc(26));
    Real R = Sum - 1.0;
    C.setLoc(loc(27));
    C.output(R);
  }
  return buildReport(C);
}

Report trigIr(const AnalysisConfig &Cfg) {
  ProgramBuilder B;
  auto X = B.input(0);
  B.setLoc(loc(21));
  auto S = B.op(Opcode::SinF64, X);
  B.setLoc(loc(22));
  auto Co = B.op(Opcode::CosF64, X);
  B.setLoc(loc(23));
  auto S2 = B.op(Opcode::MulF64, S, S);
  B.setLoc(loc(24));
  auto C2 = B.op(Opcode::MulF64, Co, Co);
  B.setLoc(loc(25));
  auto Sum = B.op(Opcode::AddF64, S2, C2);
  B.setLoc(loc(26));
  auto R = B.op(Opcode::SubF64, Sum, B.constF64(1.0));
  B.setLoc(loc(27));
  B.out(R);
  B.halt();
  Herbgrind HG(B.finish(), Cfg);
  for (double V : TrigInputs)
    HG.runOnInput({V});
  return buildReport(HG);
}

TEST(NativeParity, WrappedLibraryCalls) {
  AnalysisConfig Cfg;
  // Sub-bit local errors matter in this identity; flag them.
  Cfg.LocalErrorThreshold = 0.01;
  expectSemanticallyEqual(trigNative(Cfg), trigIr(Cfg));
}

//===----------------------------------------------------------------------===//
// Parity 4: an accumulation loop (the Patriot mechanism), plus merging
//===----------------------------------------------------------------------===//

const std::vector<double> LoopBounds = {0.7, 1.0, 2.0};

Report loopNative(const AnalysisConfig &Cfg, uint64_t *AddExecs = nullptr) {
  native::Context C(Cfg);
  for (double Bound : LoopBounds) {
    Real Limit = C.input(0, Bound);
    Real T = 0.0;
    C.setLoc(loc(31));
    while (T < Limit) {
      C.setLoc(loc(32));
      T += 0.1;
      C.setLoc(loc(31)); // re-stamp the loop condition's site
    }
    C.setLoc(loc(33));
    C.output(T);
  }
  if (AddExecs)
    for (const auto &[PC, Rec] : C.opRecords())
      if (Rec.Op == Opcode::AddF64)
        *AddExecs = Rec.Executions;
  return buildReport(C);
}

Report loopIr(const AnalysisConfig &Cfg) {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  T Limit = B.input(0);
  T Acc = B.newTemp();
  B.copyTo(Acc, B.constF64(0.0));
  T Step = B.constF64(0.1);
  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.setLoc(loc(31));
  B.branchIf(B.op(Opcode::CmpGEF64, Acc, Limit), Done);
  B.setLoc(loc(32));
  B.copyTo(Acc, B.op(Opcode::AddF64, Acc, Step));
  B.jump(Head);
  B.bind(Done);
  B.setLoc(loc(33));
  B.out(Acc);
  B.halt();
  Herbgrind HG(B.finish(), Cfg);
  for (double Bound : LoopBounds)
    HG.runOnInput({Bound});
  return buildReport(HG);
}

TEST(NativeParity, AccumulationLoop) {
  AnalysisConfig Cfg;
  Cfg.LocalErrorThreshold = 0.01; // track the sub-bit increment error
  uint64_t AddExecs = 0;
  Report N = loopNative(Cfg, &AddExecs);
  // Loop merging: every iteration of every run lands in ONE record
  // (0.7 -> 8 trips, 1.0 -> 10, 2.0 -> 20 with drift; at least 3 runs'
  // worth merged, certainly more than one trip's).
  EXPECT_GT(AddExecs, 30u);
  // The while condition diverges at a drifted boundary and the report
  // blames the increment. (The IR build uses the inverted branch
  // predicate the compiler would emit; divergence is predicate-neutral.)
  expectSemanticallyEqual(N, loopIr(Cfg));
  const SpotReport *Cmp = findSpot(N, SpotKind::Comparison, loc(31).str());
  ASSERT_NE(Cmp, nullptr);
  EXPECT_GT(Cmp->Erroneous, 0u);
  ASSERT_NE(findCause(*Cmp, loc(32).str()), nullptr);
}

//===----------------------------------------------------------------------===//
// Conversion spots and unshadowed fallback
//===----------------------------------------------------------------------===//

TEST(NativeContext, ConversionSpotCatchesDriftedTruncation) {
  AnalysisConfig Cfg;
  native::Context C(Cfg);
  Real T = 0.0;
  C.setLoc(loc(41));
  for (int I = 0; I < 10; ++I)
    T += 0.1; // sums to 0.9999... under doubles, 1.0 in the reals
  C.setLoc(loc(42));
  EXPECT_EQ(T.toInt64(), 0); // native semantics: truncation of 0.999...
  const auto &Spots = C.spotRecords();
  ASSERT_EQ(Spots.size(), 1u);
  const SpotRecord &Spot = Spots.begin()->second;
  EXPECT_EQ(Spot.Kind, SpotKind::Conversion);
  EXPECT_EQ(Spot.Erroneous, 1u); // the real truncation is 1, not 0
}

TEST(NativeReal, UnshadowedMathOutsideAnyContext) {
  // No context anywhere: plain double behavior, nothing recorded.
  ASSERT_EQ(native::Context::active(), nullptr);
  Real X = 2.0;
  Real Y = sqrt(X * X + 2.25);
  EXPECT_EQ(Y.value(), 2.5);
  EXPECT_FALSE(Y.shadowed());
  EXPECT_EQ((Y > X), true);
  EXPECT_EQ(Y.toInt64(), 2);
}

TEST(NativeContext, ResetReproducesFreshRecords) {
  const native::Kernel &K = native::demoKernels()[0];
  AnalysisConfig Cfg;
  native::Context C(Cfg);
  std::vector<double> In = {1e15};
  C.run(K, In);
  std::string First = buildReport(C).renderJson();
  C.reset();
  EXPECT_TRUE(C.opRecords().empty());
  C.run(K, In);
  EXPECT_EQ(buildReport(C).renderJson(), First);
}

TEST(NativeContext, ResetClearsTheCurrentLocation) {
  // A kernel whose first op runs before any HG_LOC must record it under
  // the unknown location on a reset context exactly as on a fresh one;
  // a stale CurLoc from the previous shard would re-key the records and
  // break --jobs byte-identity.
  native::Kernel Unmarked;
  Unmarked.Name = "unmarked";
  Unmarked.Inputs = {{1.0, 2.0}};
  Unmarked.Fn = [](native::Context &C, const double *, size_t) {
    Real X = C.input(0);
    Real Y = X * X; // no HG_LOC anywhere
    C.output(Y);
  };
  std::vector<double> In = {1.5};
  AnalysisConfig Cfg;
  native::Context Fresh(Cfg);
  Fresh.run(Unmarked, In);

  native::Context Recycled(Cfg);
  Recycled.run(native::demoKernels()[0], In); // leaves HG_LOC state behind
  Recycled.reset();
  Recycled.run(Unmarked, In);

  ASSERT_EQ(Fresh.opRecords().size(), Recycled.opRecords().size());
  EXPECT_EQ(Fresh.opRecords().begin()->first,
            Recycled.opRecords().begin()->first);
  EXPECT_EQ(buildReport(Fresh).renderJson(),
            buildReport(Recycled).renderJson());
}

TEST(NativeContext, EachInvocationStartsAtTheUnknownLocation) {
  // Without this, a pre-HG_LOC op in invocation 2..N of a shard would
  // key under the previous invocation's tail location, making record
  // ids depend on how runs are batched into shards.
  native::Kernel Unmarked;
  Unmarked.Name = "unmarked";
  Unmarked.Inputs = {{1.0, 2.0}};
  Unmarked.Fn = [](native::Context &C, const double *, size_t) {
    Real X = C.input(0);
    C.output(X * X); // no HG_LOC anywhere
  };
  std::vector<double> In = {1.5};
  AnalysisConfig Cfg;
  native::Context Fresh(Cfg);
  Fresh.run(Unmarked, In);

  native::Context Mixed(Cfg);
  Mixed.run(native::demoKernels()[0], In); // tail leaves HG_LOC state
  Mixed.run(Unmarked, In);
  for (const auto &[PC, Rec] : Fresh.opRecords()) {
    auto It = Mixed.opRecords().find(PC);
    ASSERT_NE(It, Mixed.opRecords().end());
    EXPECT_EQ(It->second.Executions, Rec.Executions);
  }
}

void stampFromNamedFunction(native::Context &C) { HG_LOC(C); }

TEST(NativeContext, HgLocCapturesTheEnclosingFunction) {
  // __func__ must be evaluated at the expansion site, not inside the
  // macro's helper lambda ("operator()") -- the function name is part of
  // the site-identity hash.
  AnalysisConfig Cfg;
  native::Context C(Cfg);
  stampFromNamedFunction(C);
  EXPECT_EQ(C.loc().Function, "stampFromNamedFunction");
  EXPECT_NE(C.loc().File.find("test_native.cpp"), std::string::npos);
}

TEST(NativeContext, ReinterningIsNotACollision) {
  // Re-stamping locations (every loop trip invalidates the site cache)
  // re-interns the same sites; the collision counter must only count
  // genuinely distinct sites sharing a hash.
  AnalysisConfig Cfg;
  native::Context C(Cfg);
  std::vector<double> In = {2.0};
  for (int I = 0; I < 5; ++I)
    C.run(native::demoKernels()[2], In); // the step loop re-stamps HG_LOC
  EXPECT_EQ(C.stats().SiteCollisions, 0u);
}

TEST(NativeContext, NonLifoDestructionKeepsActiveChainSafe) {
  // The engine replaces a worker's heap-allocated context in place; the
  // activation stack must drop the destroyed element's entries instead of
  // leaving a dangling active() after the replacement dies.
  ASSERT_EQ(native::Context::active(), nullptr);
  auto P = std::make_unique<native::Context>();
  P = std::make_unique<native::Context>(); // old dies while new is active
  EXPECT_EQ(native::Context::active(), P.get());
  P.reset();
  EXPECT_EQ(native::Context::active(), nullptr);
  Real X = 2.0;
  EXPECT_EQ((X * X).value(), 4.0); // unshadowed fallback, no dangling ctx
}

TEST(NativeContext, DestroyingAnotherContextMidRunKeepsActiveSafe) {
  // A context destroyed while it sits below an Activation frame (another
  // context's run() in flight) must not resurface through active().
  ASSERT_EQ(native::Context::active(), nullptr);
  auto Victim = std::make_unique<native::Context>();
  native::Context C;
  native::Kernel K;
  K.Name = "destroyer";
  K.Inputs = {{0.0, 1.0}};
  K.Fn = [&Victim](native::Context &Ctx, const double *, size_t) {
    Victim.reset(); // dies mid-activation, below the run() frame
    Ctx.output(Ctx.input(0) + 1.0);
  };
  std::vector<double> In = {0.5};
  C.run(K, In);
  EXPECT_EQ(native::Context::active(), &C);
  Real R = 1.0;
  EXPECT_EQ((R + R).value(), 2.0); // dispatches through a live context
}

TEST(NativeContext, SiteIdsAreContextIndependent) {
  // Two independent contexts (as two engine workers would hold) number
  // the same kernel's sites identically -- the property shard merging
  // and result caching stand on.
  const native::Kernel &K = native::demoKernels()[1];
  AnalysisConfig Cfg;
  std::vector<double> In = {3.0, 4.0, 5.0};
  native::Context C1(Cfg), C2(Cfg);
  C1.run(K, In);
  C2.run(K, In);
  ASSERT_EQ(C1.opRecords().size(), C2.opRecords().size());
  auto It1 = C1.opRecords().begin();
  for (const auto &[PC, Rec] : C2.opRecords()) {
    EXPECT_EQ(It1->first, PC);
    EXPECT_EQ(It1->second.Op, Rec.Op);
    ++It1;
  }
  EXPECT_EQ(C1.stats().SiteCollisions, 0u);
}

//===----------------------------------------------------------------------===//
// Engine integration: sharding, jobs-invariance, caching
//===----------------------------------------------------------------------===//

struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("herbgrind-native-" + Tag + "-" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

engine::EngineConfig smallConfig(unsigned Jobs) {
  engine::EngineConfig Cfg;
  Cfg.Jobs = Jobs;
  Cfg.SamplesPerBenchmark = 12;
  Cfg.ShardSize = 3; // several shards per kernel: merging is exercised
  return Cfg;
}

TEST(NativeEngine, JobsDoNotChangeTheBytes) {
  engine::Engine One(smallConfig(1));
  engine::Engine Four(smallConfig(4));
  engine::BatchResult R1 = One.run(native::demoKernels());
  engine::BatchResult R4 = Four.run(native::demoKernels());
  EXPECT_GT(R1.Stats.Runs, 0u);
  EXPECT_EQ(R1.renderJson(), R4.renderJson());
}

TEST(NativeEngine, CombinedCorpusAndNativeSweep) {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus())
    if (C.Name == "NMSE example 3.1")
      Cores.push_back(C.clone());
  ASSERT_EQ(Cores.size(), 1u);
  engine::Engine E1(smallConfig(1)), E4(smallConfig(4));
  engine::BatchResult R1 = E1.run(Cores, native::demoKernels());
  engine::BatchResult R4 = E4.run(Cores, native::demoKernels());
  ASSERT_EQ(R1.Benchmarks.size(), 1 + native::demoKernels().size());
  EXPECT_EQ(R1.Benchmarks[0].Name, "NMSE example 3.1");
  EXPECT_EQ(R1.renderJson(), R4.renderJson());
}

TEST(NativeEngine, WarmCacheAnalyzesNothingAndMatchesBytes) {
  TempDir Dir("cache");
  engine::EngineConfig Cfg = smallConfig(2);
  Cfg.CacheDir = Dir.Path;
  engine::Engine Eng(Cfg);
  engine::BatchResult Cold = Eng.run(native::demoKernels());
  EXPECT_GT(Cold.Stats.AnalyzedShards, 0u);
  engine::BatchResult Warm = Eng.run(native::demoKernels());
  EXPECT_EQ(Warm.Stats.AnalyzedShards, 0u);
  EXPECT_EQ(Warm.Stats.CachedShards, Warm.Stats.Shards);
  EXPECT_EQ(Cold.renderJson(), Warm.renderJson());
}

TEST(NativeEngine, KernelIdentityKeysTheCache) {
  // Same name, different identity: the cache must miss (this is the
  // "bump Identity when the math changes" contract).
  TempDir Dir("ident");
  engine::EngineConfig Cfg = smallConfig(1);
  Cfg.CacheDir = Dir.Path;
  native::Kernel K = native::demoKernels()[0];
  {
    engine::Engine Eng(Cfg);
    engine::BatchResult R = Eng.run({K});
    EXPECT_GT(R.Stats.AnalyzedShards, 0u);
  }
  K.Identity = "cancel-v2";
  {
    engine::Engine Eng(Cfg);
    engine::BatchResult R = Eng.run({K});
    EXPECT_GT(R.Stats.AnalyzedShards, 0u); // fresh identity, no hits
  }
}

} // namespace
