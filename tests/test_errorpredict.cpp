//===- tests/test_errorpredict.cpp - Tier-0 predicate properties ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Property tests for the tier-0 error predicates (analysis/ErrorPredict):
// on seeded random op chains, the propagated AbsErr bound must dominate
// the true |real - concrete| deviation measured by the 256-bit BigFloat
// shadow, the predicted local-error bits must dominate the true local
// error the full analysis would flag, and the output predicate must fire
// on every value whose true error crosses the threshold (soundness). The
// price of soundness -- the false-positive escalation rate -- is measured
// and reported, with only a collapse guard asserted.
//
//===----------------------------------------------------------------------===//

#include "analysis/ErrorPredict.h"
#include "analysis/RealOps.h"
#include "ir/Opcode.h"
#include "support/FloatBits.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::errpredict;

namespace {

/// One tier-0-tracked value next to its exact BigFloat shadow: the
/// ground truth the predicates are checked against.
struct Tracked {
  double C = 0.0; ///< Concrete double (what the program computes).
  BigFloat R;     ///< Exact real (256-bit shadow).
  PredVal P;      ///< Tier-0 running-error pair; |R - C| <= |Delta| + Noise.
  double predErr() const { return predTotal(P.Delta, P.Noise); }
};

/// |R - C| as a double. The bound side of the comparison gets the
/// tolerance (not this side): the bound's own double arithmetic and this
/// measurement's final rounding each wobble by parts in 2^52, and an
/// exactly-tight bound (common for add/sub) must still pass.
double trueAbsErr(const Tracked &T) {
  if (T.R.isNaN() || std::isnan(T.C))
    return std::isnan(T.C) && T.R.isNaN() ? 0.0
                                          : std::numeric_limits<double>::infinity();
  BigFloat D, CB = BigFloat::fromDouble(T.C);
  BigFloat::subInto(D, T.R, CB);
  return std::fabs(D.toDouble());
}

/// The ops the random chains draw from: the full predicate table's
/// interesting rows (cancellation, poles, domain edges, libm).
const Opcode ChainOps[] = {
    Opcode::AddF64,  Opcode::SubF64,  Opcode::MulF64,  Opcode::DivF64,
    Opcode::SqrtF64, Opcode::NegF64,  Opcode::AbsF64,  Opcode::MinF64,
    Opcode::MaxF64,  Opcode::FmaF64,  Opcode::SinF64,  Opcode::CosF64,
    Opcode::ExpF64,  Opcode::LogF64,  Opcode::Log1pF64, Opcode::Expm1F64,
    Opcode::CbrtF64, Opcode::AtanF64, Opcode::TanhF64, Opcode::HypotF64,
};

/// Applies one op to tracked values: concrete via evalScalarOp, exact via
/// evalRealOp, bound via predictScalarOp -- precisely the three paths the
/// tiered analysis keeps in correspondence.
Tracked applyTracked(Opcode Op, const std::vector<Tracked> &Args) {
  unsigned N = static_cast<unsigned>(Args.size());
  Value V[3];
  BigFloat R[3];
  PredVal E[3];
  for (unsigned I = 0; I < N; ++I) {
    V[I] = Value::ofF64(Args[I].C);
    R[I] = Args[I].R;
    E[I] = Args[I].P;
  }
  Tracked Out;
  Out.C = evalScalarOp(Op, V, N).F64;
  Out.R = evalRealOp(Op, R, N);
  PredOp P = predictScalarOp(Op, V, E, N, Value::ofF64(Out.C));
  Out.P = {P.Delta, P.Noise};
  return Out;
}

/// |R - (C + Delta)| as a double: how far the signed running estimate is
/// from the truth. Must stay within Noise for the pair to be sound. Both
/// subtractions happen in BigFloat -- rounding R - C to double first
/// would smear more than the noise bounds being checked.
double trueDeltaDev(const Tracked &T) {
  if (T.R.isNaN() || std::isnan(T.C) || !std::isfinite(T.P.Delta))
    return std::numeric_limits<double>::infinity();
  BigFloat D, D2, CB = BigFloat::fromDouble(T.C);
  BigFloat DB = BigFloat::fromDouble(T.P.Delta);
  BigFloat::subInto(D, T.R, CB);
  BigFloat::subInto(D2, D, DB);
  return std::fabs(D2.toDouble());
}

/// A random leaf: exact by construction (tier-0 leaves carry E = 0).
Tracked randomLeaf(Rng &Rand) {
  Tracked T;
  switch (Rand.nextBelow(4)) {
  case 0:
    T.C = Rand.betweenOrdinals(1.0, 1e15);
    break;
  case 1:
    T.C = Rand.betweenOrdinals(-10.0, 10.0);
    break;
  case 2:
    T.C = Rand.betweenOrdinals(1e-12, 1.0);
    break;
  default:
    T.C = Rand.uniformReal(-1.0, 1.0);
    break;
  }
  T.R = BigFloat::fromDouble(T.C);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Soundness of the propagated absolute-error bound
//===----------------------------------------------------------------------===//

TEST(ErrorPredict, AbsErrBoundDominatesTrueErrorOnRandomChains) {
  Rng Rand(0xe7707);
  int Checked = 0, Useful = 0;
  for (int Trial = 0; Trial < 4000; ++Trial) {
    // A chain of 1-4 ops over 1-3 exact leaves.
    std::vector<Tracked> Pool;
    double MagMax = 0.0; // resolution scale of the 256-bit ground truth
    for (int L = 0; L < 3; ++L) {
      Pool.push_back(randomLeaf(Rand));
      MagMax = std::max(MagMax, std::fabs(Pool.back().C));
    }
    unsigned Len = 1 + static_cast<unsigned>(Rand.nextBelow(4));
    for (unsigned Step = 0; Step < Len; ++Step) {
      Opcode Op = ChainOps[Rand.nextBelow(sizeof(ChainOps) /
                                          sizeof(*ChainOps))];
      unsigned N = opInfo(Op).Arity;
      std::vector<Tracked> Args;
      for (unsigned I = 0; I < N; ++I)
        Args.push_back(Pool[Rand.nextBelow(Pool.size())]);
      Tracked Out = applyTracked(Op, Args);
      MagMax = std::max(MagMax, std::fabs(Out.C));

      ++Checked;
      double True = trueAbsErr(Out);
      // The exact-residual rows can track errors *below* what the
      // 256-bit BigFloat ground truth resolves (it rounds a real like
      // 0.6 + 1e-78 back to 0.6). Only assert contracts the measurement
      // can actually see: bounds above the shadow's own rounding floor,
      // ~2^-250 of the largest magnitude in the chain.
      double Floor = MagMax * 0x1p-200;
      if (std::isfinite(Out.predErr())) {
        ++Useful;
        if (Out.predErr() >= Floor)
          EXPECT_LE(True, Out.predErr() * (1.0 + 1e-9))
              << "op " << opInfo(Op).Name << " trial " << Trial
              << " concrete " << Out.C;
        // The sharper running-error contract: the signed estimate tracks
        // the truth to within its own noise bound.
        if (Out.P.Noise >= Floor)
          EXPECT_LE(trueDeltaDev(Out), Out.P.Noise * (1.0 + 1e-9))
              << "op " << opInfo(Op).Name << " trial " << Trial
              << " delta " << Out.P.Delta << " concrete " << Out.C;
      }
      Pool.push_back(Out);
    }
  }
  // The bound must be *useful*, not inf everywhere: most random ops land
  // in the known rows of the predicate table.
  EXPECT_GT(Useful * 2, Checked);
}

//===----------------------------------------------------------------------===//
// The exact-residual div refinement
//===----------------------------------------------------------------------===//

TEST(ErrorPredict, DivRefinementRecoversExactResidualOnExactInputs) {
  // For exact operands the refined div row must carry the *true*
  // rounding error of q = fl(a/b) as its signed Delta -- computed as
  // -fma(q, b, -a) / b -- with a Noise bound orders of magnitude below
  // the interval row's half-ulp (whose Delta is 0).
  Rng Rand(0xd1f);
  int Inexact = 0;
  for (int Trial = 0; Trial < 2000; ++Trial) {
    double A = Rand.betweenOrdinals(1.0, 1e9);
    double B = Rand.betweenOrdinals(1.0, 1e6);
    if (Rand.nextBelow(2))
      A = -A;
    if (Rand.nextBelow(2))
      B = -B;
    double Q = A / B;
    Value V[2] = {Value::ofF64(A), Value::ofF64(B)};
    PredVal E[2]; // exact leaves
    PredOp P = predictScalarOp(Opcode::DivF64, V, E, 2, Value::ofF64(Q));
    double R = std::fma(Q, B, -A);
    EXPECT_EQ(P.Delta, -R / B) << "trial " << Trial;
    EXPECT_LT(P.Noise, 0x1p-80 * std::fabs(Q) + 1e-300) << "trial " << Trial;
    if (R != 0.0)
      ++Inexact;
    // The pair must still be sound against the BigFloat ground truth.
    Tracked T;
    T.C = Q;
    T.R = evalRealOp(Opcode::DivF64,
                     std::array<BigFloat, 2>{BigFloat::fromDouble(A),
                                             BigFloat::fromDouble(B)}
                         .data(),
                     2);
    T.P = {P.Delta, P.Noise};
    double Floor = std::fabs(Q) * 0x1p-200;
    if (T.P.Noise >= Floor)
      EXPECT_LE(trueDeltaDev(T), T.P.Noise * (1.0 + 1e-9)) << "trial " << Trial;
  }
  ASSERT_GT(Inexact, 0) << "vacuous: every sampled quotient was exact";
}

TEST(ErrorPredict, DivRefinementStaysSoundWithErroneousArguments) {
  // Feed the div row argument pairs that already carry signed error and
  // noise, and check |real - (q + Delta)| <= Noise against a BigFloat
  // evaluation of the *true* perturbed quotient at the Delta corner.
  Rng Rand(0xd1f2);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    double A = Rand.betweenOrdinals(1.0, 1e9);
    double B = Rand.betweenOrdinals(1.0, 1e6);
    if (Rand.nextBelow(2))
      A = -A;
    if (Rand.nextBelow(2))
      B = -B;
    double DA = Rand.uniformReal(-1e-8, 1e-8) * A;
    double DB = Rand.uniformReal(-1e-8, 1e-8) * B;
    PredVal E[2] = {{DA, 0.0}, {DB, 0.0}};
    double Q = A / B;
    Value V[2] = {Value::ofF64(A), Value::ofF64(B)};
    PredOp P = predictScalarOp(Opcode::DivF64, V, E, 2, Value::ofF64(Q));
    ASSERT_TRUE(std::isfinite(P.Noise)) << "trial " << Trial;
    // real0 = A + DA exactly, real1 = B + DB exactly (Noise = 0).
    BigFloat RA, RB, RQ;
    BigFloat::addInto(RA, BigFloat::fromDouble(A), BigFloat::fromDouble(DA));
    BigFloat::addInto(RB, BigFloat::fromDouble(B), BigFloat::fromDouble(DB));
    RQ = BigFloat::div(RA, RB);
    Tracked T;
    T.C = Q;
    T.R = RQ;
    T.P = {P.Delta, P.Noise};
    double Floor = std::fabs(Q) * 0x1p-200;
    if (T.P.Noise >= Floor)
      EXPECT_LE(trueDeltaDev(T), T.P.Noise * (1.0 + 1e-9))
          << "trial " << Trial << " A " << A << " B " << B;
  }
}

//===----------------------------------------------------------------------===//
// Soundness of the output predicate (what escalation hinges on)
//===----------------------------------------------------------------------===//

TEST(ErrorPredict, OutputPredicateFiresOnEveryTrulyErroneousValue) {
  const double Threshold = 5.0; // Cfg.OutputErrorThreshold's default.
  Rng R2(0x50a75);
  uint64_t Erroneous = 0, Missed = 0, Clean = 0, FalsePositive = 0;
  for (int Trial = 0; Trial < 4000; ++Trial) {
    std::vector<Tracked> Pool;
    for (int L = 0; L < 3; ++L)
      Pool.push_back(randomLeaf(R2));
    unsigned Len = 1 + static_cast<unsigned>(R2.nextBelow(4));
    Tracked Out = Pool[0];
    for (unsigned Step = 0; Step < Len; ++Step) {
      Opcode Op = ChainOps[R2.nextBelow(sizeof(ChainOps) / sizeof(*ChainOps))];
      unsigned N = opInfo(Op).Arity;
      std::vector<Tracked> Args;
      for (unsigned I = 0; I < N; ++I)
        Args.push_back(Pool[R2.nextBelow(Pool.size())]);
      Out = applyTracked(Op, Args);
      Pool.push_back(Out);
    }

    // Ground truth: the error bits the full shadow would report for this
    // value at an output spot.
    double TrueBits = std::isnan(Out.C) || Out.R.isNaN()
                          ? 64.0
                          : bitsOfErrorDouble(Out.C, Out.R.toDouble());
    bool TrulyErroneous = TrueBits > Threshold;
    bool Suspect =
        outputSuspect(Value::ofF64(Out.C), Out.predErr(), Threshold);

    if (TrulyErroneous) {
      ++Erroneous;
      if (!Suspect)
        ++Missed;
      EXPECT_TRUE(Suspect) << "trial " << Trial << ": true error "
                           << TrueBits << " bits escaped the predicate";
    } else {
      ++Clean;
      if (Suspect)
        ++FalsePositive;
    }
  }
  EXPECT_EQ(Missed, 0u);
  ASSERT_GT(Erroneous, 0u) << "vacuous: no chain was actually erroneous";
  ASSERT_GT(Clean, 0u) << "vacuous: every chain was erroneous";

  // The cost of soundness, reported not asserted (beyond a collapse
  // guard): how often a clean value would still escalate.
  double FpRate = static_cast<double>(FalsePositive) /
                  static_cast<double>(Clean);
  std::printf("[ tier-0 ] %llu erroneous (0 missed), %llu clean, "
              "false-positive escalation rate %.1f%%\n",
              static_cast<unsigned long long>(Erroneous),
              static_cast<unsigned long long>(Clean), 100.0 * FpRate);
  ::testing::Test::RecordProperty("tier0_false_positive_rate_percent",
                                  static_cast<int>(100.0 * FpRate));
  EXPECT_LT(FpRate, 0.9) << "predicate collapsed: it escalates everything";
}

//===----------------------------------------------------------------------===//
// The spot predicates
//===----------------------------------------------------------------------===//

TEST(ErrorPredict, ComparisonPredicate) {
  Value A = Value::ofF64(1.0), B = Value::ofF64(2.0);
  // Far apart relative to the bounds: the comparison cannot flip.
  EXPECT_FALSE(comparisonSuspect(A, B, 0.25, 0.25));
  // Bounds overlap the gap: suspect.
  EXPECT_TRUE(comparisonSuspect(A, B, 0.75, 0.75));
  // Exact values never flip.
  EXPECT_FALSE(comparisonSuspect(A, B, 0.0, 0.0));
  // Equal concretes with any uncertainty: suspect.
  EXPECT_TRUE(comparisonSuspect(A, A, 1e-300, 0.0));
  // NaN anywhere: suspect.
  EXPECT_TRUE(comparisonSuspect(Value::ofF64(std::nan("")), B, 0.0, 0.0));
}

TEST(ErrorPredict, ConversionPredicate) {
  // Exact value: truncation cannot diverge.
  EXPECT_FALSE(conversionSuspect(3.75, 0.0));
  // Error too small to cross an integer boundary.
  EXPECT_FALSE(conversionSuspect(3.5, 0.25));
  // Error reaches across the boundary at 4.
  EXPECT_TRUE(conversionSuspect(3.9, 0.2));
  // Sign-crossing truncation.
  EXPECT_TRUE(conversionSuspect(0.5, 0.75));
  // Exact out of int64 range: shadow and concrete saturate identically,
  // so no divergence is possible.
  EXPECT_FALSE(conversionSuspect(1e19, 0.0));
  // Inexact near or past the boundary: always suspect.
  EXPECT_TRUE(conversionSuspect(1e19, 1.0));
  EXPECT_TRUE(conversionSuspect(9.2e18, 1e17));
  EXPECT_TRUE(conversionSuspect(std::nan(""), 0.0));
}

TEST(ErrorPredict, OutputPredicateEdgeCases) {
  // NaN concrete is maximal error in the full analysis even for an
  // unshadowed value, so the predicate must fire regardless of the bound.
  EXPECT_TRUE(outputSuspect(Value::ofF64(std::nan("")), 0.0, 5.0));
  // Exact values never fire.
  EXPECT_FALSE(outputSuspect(Value::ofF64(1.5), 0.0, 5.0));
  // A bound far above the threshold fires.
  EXPECT_TRUE(outputSuspect(Value::ofF64(1.0), 0.5, 5.0));
}

TEST(ErrorPredict, HalfUlpKeepsExactValuesExact) {
  EXPECT_EQ(halfUlpAround(1.5, 0.0, ValueType::F64), 0.0);
  EXPECT_EQ(halfUlpAround(0.0, 0.0, ValueType::F32), 0.0);
  EXPECT_GT(halfUlpAround(1.5, 1e-18, ValueType::F64), 0.0);
}

TEST(ErrorPredict, PredictedErrorBitsBasics) {
  EXPECT_EQ(predictedErrorBits(1.0, 0.0, ValueType::F64), 0.0);
  // An error of one ulp at 1.0 is about one bit.
  double Ulp = std::nextafter(1.0, 2.0) - 1.0;
  double Bits = predictedErrorBits(1.0, Ulp, ValueType::F64);
  EXPECT_GT(Bits, 0.5);
  EXPECT_LT(Bits, 3.0);
  // Non-finite inputs saturate.
  EXPECT_EQ(predictedErrorBits(std::nan(""), 0.0, ValueType::F64), 64.0);
  EXPECT_EQ(
      predictedErrorBits(1.0, std::numeric_limits<double>::infinity(),
                         ValueType::F64),
      64.0);
}
